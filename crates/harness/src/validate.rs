//! Model validation: the BADCO-vs-detailed error-bound sweep behind
//! `mps-harness validate`.
//!
//! The paper's methodology rests on the approximate (BADCO) simulator
//! tracking the detailed one closely enough that sample-selection
//! conclusions transfer. Approximate models drift silently as a codebase
//! evolves, so this module sweeps a seeded grid of workload combinations
//! through *both* simulators and summarizes the disagreement three ways:
//!
//! * per-thread relative IPC error (signed and absolute) — the Figure 2
//!   accuracy quantity,
//! * throughput-rank inversions (Kendall tau between the two models'
//!   workload orderings per `(cores, policy)` cell) — the paper's
//!   selection decisions depend on ranks, not raw IPC,
//! * the same IPC errors broken down per MPKI stratum, since model error
//!   concentrates in memory-intensive benchmarks.
//!
//! The resulting [`ValidationReport`] renders as text, CSV and a
//! schema-versioned JSONL record; all three are **byte-deterministic**
//! for a given [`crate::Scale`] and [`ValidateOptions`] — independent of
//! `--jobs` — except the informational `timing:` line of the text form.
//!
//! CI gates on **drift against a pinned baseline report**, not on
//! absolute error: the simulators are deterministic, so an unmodified
//! model reproduces its checked-in baseline exactly, and any growth in
//! error is a code change showing through. [`FailOn`] parses thresholds
//! like `mean-abs-err=5%,rank-inversions=3` (≤ 5 % relative growth of
//! the mean absolute IPC error, ≤ 3 new rank inversions) the same way
//! `trace diff --fail-on-regress` gates counter growth. See
//! `docs/validation.md` for the methodology and the re-baselining
//! procedure.

use crate::runner::{experiment_uncore, StudyContext};
use mps_badco::BadcoModel;
use mps_sampling::{Workload, WorkloadSpace};
use mps_stats::error_bounds::{kendall, relative_errors, ErrorStats, RankAgreement};
use mps_store::Error;
use mps_uncore::PolicyKind;
use mps_workloads::MpkiClass;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Schema of the JSONL validation report. Bump when a field changes
/// meaning; readers reject reports from the future instead of misreading
/// them.
pub const VALIDATE_SCHEMA: u32 = 1;

/// Seed stream tag for the validation grid's workload draws (distinct
/// from every experiment stream).
const VALIDATE_STREAM: u64 = 0x5641_4C31;

/// Sizing and perturbation knobs of one validation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateOptions {
    /// Core counts to sweep (Table II defines 2, 4 and 8).
    pub core_counts: Vec<usize>,
    /// Replacement policies to sweep per core count.
    pub policies: Vec<PolicyKind>,
    /// Seeded random workloads per `(cores, policy)` cell.
    pub workloads_per_group: usize,
    /// Coefficient perturbation applied to every BADCO model via
    /// [`BadcoModel::perturbed`]; `1.0` (the default) validates the
    /// unmodified model. Any other value exists solely to prove the
    /// drift gate fires — see `docs/validation.md`.
    pub perturb: f64,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        ValidateOptions {
            core_counts: vec![2, 4],
            policies: vec![PolicyKind::Lru, PolicyKind::Drrip],
            workloads_per_group: 6,
            perturb: 1.0,
        }
    }
}

impl ValidateOptions {
    /// Canonical fingerprint of the sweep's *grid* knobs, mixed into the
    /// report spec so a baseline only ever gates a sweep of the same
    /// shape. `perturb` is deliberately **excluded**: a perturbed model
    /// must masquerade as the real one so the drift gate catches it
    /// against the honest baseline (the factor is still recorded in the
    /// report header and kept out of shared checkpoint cells via the
    /// per-cell tag).
    pub fn spec_string(&self) -> String {
        let cores: Vec<String> = self.core_counts.iter().map(|c| c.to_string()).collect();
        let pols: Vec<String> = self.policies.iter().map(|p| p.to_string()).collect();
        format!(
            "cores={};policies={};w={}",
            cores.join("-"),
            pols.join("-"),
            self.workloads_per_group,
        )
    }

    fn check(&self) -> Result<(), Error> {
        if self.core_counts.is_empty() || self.policies.is_empty() || self.workloads_per_group == 0
        {
            return Err(Error::InvalidInput(
                "validation sweep needs at least one core count, policy and workload".to_owned(),
            ));
        }
        for &c in &self.core_counts {
            if !matches!(c, 1 | 2 | 4 | 8) {
                return Err(Error::InvalidInput(format!(
                    "Table II defines 1-, 2-, 4- and 8-core uncores (got {c})"
                )));
            }
        }
        if !(self.perturb.is_finite() && self.perturb > 0.0) {
            return Err(Error::InvalidInput(format!(
                "perturbation factor must be finite and positive (got {})",
                self.perturb
            )));
        }
        Ok(())
    }
}

/// One validated workload: paired per-thread IPCs and the derived
/// weighted-speedup throughputs.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadValidation {
    /// Benchmark names joined with `+` (e.g. `gcc+mcf`).
    pub name: String,
    /// Suite indices of the co-scheduled benchmarks.
    pub benchmarks: Vec<u16>,
    /// Per-thread IPCs from the detailed simulator.
    pub detailed_ipc: Vec<f64>,
    /// Per-thread IPCs from BADCO.
    pub badco_ipc: Vec<f64>,
    /// Weighted speedup under the detailed model (detailed references).
    pub detailed_throughput: f64,
    /// Weighted speedup under BADCO (BADCO references) — model-matched,
    /// as everywhere else in the reproduction.
    pub badco_throughput: f64,
}

impl WorkloadValidation {
    /// Signed per-thread relative IPC errors (BADCO vs detailed).
    pub fn thread_errors(&self) -> Vec<f64> {
        relative_errors(&self.badco_ipc, &self.detailed_ipc)
    }

    /// Signed relative throughput error.
    pub fn throughput_error(&self) -> f64 {
        (self.badco_throughput - self.detailed_throughput) / self.detailed_throughput
    }
}

/// Error statistics of one `(cores, policy)` grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupValidation {
    /// Core count of the cell.
    pub cores: usize,
    /// Replacement policy of the cell.
    pub policy: PolicyKind,
    /// Canonical uncore fingerprint the cell simulated against.
    pub uncore_spec: String,
    /// Per-workload rows, in draw order.
    pub rows: Vec<WorkloadValidation>,
    /// Per-thread IPC error summary over every row.
    pub ipc_err: ErrorStats,
    /// Per-workload throughput error summary.
    pub throughput_err: ErrorStats,
    /// Ordering agreement between the two models' throughput rankings.
    pub rank: RankAgreement,
}

/// Whole-sweep aggregates — the quantities [`FailOn`] gates on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ValidationSummary {
    /// Pooled per-thread IPC error over every group.
    pub ipc_err: ErrorStats,
    /// Pooled per-workload throughput error over every group.
    pub throughput_err: ErrorStats,
    /// Rank inversions (discordant pairs) summed over groups.
    pub rank_inversions: usize,
    /// Mean Kendall tau over groups.
    pub mean_tau: f64,
    /// Workloads validated.
    pub workloads: usize,
    /// Threads (per-workload cores) validated.
    pub threads: usize,
}

/// The complete result of one validation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Full artifact spec (scale + suite + sweep knobs) — baselines only
    /// compare against reports with an identical spec.
    pub spec: String,
    /// The sweep's sizing/perturbation knobs.
    pub opts: ValidateOptions,
    /// One entry per `(cores, policy)` cell, in sweep order.
    pub groups: Vec<GroupValidation>,
    /// Pooled per-thread IPC error per MPKI stratum, indexed like
    /// [`MpkiClass::ALL`].
    pub strata: [ErrorStats; 3],
    /// Whole-sweep aggregates.
    pub summary: ValidationSummary,
    /// Wall-clock of the sweep — informational only: printed on the text
    /// report's `timing:` line, excluded from CSV and JSONL so those
    /// artifacts stay byte-deterministic.
    pub wall_ms: u128,
}

/// The spec under which validation artifacts are keyed and checkpointed.
fn sweep_spec(ctx: &StudyContext, opts: &ValidateOptions) -> String {
    ctx.artifact_spec(&format!("validate;{}", opts.spec_string()))
}

/// Runs the validation sweep. Deterministic for a given context scale and
/// options; resumable through the context's store checkpoint (cells carry
/// the perturbation factor in their ids, so perturbed and honest sweeps
/// never share cells).
///
/// # Errors
///
/// Invalid options, or any failure of the underlying model/trace
/// accessors.
pub fn run(ctx: &StudyContext, opts: &ValidateOptions) -> Result<ValidationReport, Error> {
    opts.check()?;
    let t0 = Instant::now();
    let span = mps_obs::span("validate.run");
    mps_obs::counter("validate.runs").incr();

    // Prefetch shared artifacts through the validated accessors so the
    // parallel cells below cannot fail, and apply the perturbation once
    // per core count (never into the context's model cache).
    let mut per_cores: Vec<(usize, PerCores)> = Vec::new();
    for &cores in &opts.core_counts {
        if per_cores.iter().any(|(c, _)| *c == cores) {
            continue;
        }
        let models = ctx.models(cores)?;
        let models = if opts.perturb == 1.0 {
            models
        } else {
            models
                .iter()
                .map(|m| Arc::new(m.perturbed(opts.perturb)))
                .collect()
        };
        per_cores.push((
            cores,
            PerCores {
                models,
                detailed_refs: ctx.detailed_reference_ipcs(cores)?,
                badco_refs: ctx.badco_reference_ipcs(cores)?,
            },
        ));
    }

    // Draw every cell's workloads up front from per-(cores, policy) seed
    // streams: the grid contents are fixed before any parallelism starts.
    let suite = ctx.suite();
    let mut cells: Vec<Cell> = Vec::new();
    for &cores in &opts.core_counts {
        let space = WorkloadSpace::new(suite.len(), cores);
        for (p_idx, &policy) in opts.policies.iter().enumerate() {
            let mut rng = ctx.rng(VALIDATE_STREAM ^ ((cores as u64) << 20) ^ (p_idx as u64));
            for widx in 0..opts.workloads_per_group {
                cells.push(Cell {
                    cores,
                    policy,
                    widx,
                    workload: space.random_workload(&mut rng),
                });
            }
        }
    }

    let ckpt = ctx.grid_checkpoint("validate");
    let sweep_tag = format!("perturb={}", opts.perturb);
    let results: Vec<(Vec<f64>, Vec<f64>)> =
        mps_par::par_map_indexed(ctx.jobs(), &cells, |_, cell| -> (Vec<f64>, Vec<f64>) {
            let started = Instant::now();
            let models = &per_cores
                .iter()
                .find(|(c, _)| *c == cell.cores)
                .expect("prefetched above")
                .1
                .models;
            let key = |model: &str, k: usize| {
                format!(
                    "{sweep_tag};c={};p={};w={};m={model};k={k}",
                    cell.cores, cell.policy, cell.widx
                )
            };
            let cached = |model: &str| -> Option<Vec<f64>> {
                let ck = ckpt.as_ref()?;
                (0..cell.workload.cores())
                    .map(|k| ck.lookup(&key(model, k)))
                    .collect()
            };
            let record = |model: &str, ipcs: &[f64]| {
                if let Some(ck) = ckpt.as_ref() {
                    for (k, &v) in ipcs.iter().enumerate() {
                        ck.record(&key(model, k), v);
                    }
                }
            };
            let det = cached("det").unwrap_or_else(|| {
                let ipcs = ctx
                    .validation_detailed_ipcs(cell.cores, cell.policy, &cell.workload)
                    .expect("workload drawn from the suite's own space");
                record("det", &ipcs);
                ipcs
            });
            let bad = cached("badco").unwrap_or_else(|| {
                let ipcs =
                    StudyContext::badco_run_with(models, cell.cores, cell.policy, &cell.workload);
                record("badco", &ipcs);
                ipcs
            });
            mps_obs::histogram("validate.cell.latency_us").record_duration(started.elapsed());
            (det, bad)
        });

    // Merge in cell order (index-ordered by construction) and aggregate —
    // all statistics and estimator recordings happen here, on one thread,
    // in draw order, which is what keeps the report and the /metrics
    // estimators byte-stable across --jobs.
    let mut groups: Vec<GroupValidation> = Vec::new();
    let mut stratum_errs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (cell, (det, bad)) in cells.iter().zip(&results) {
        let pc = &per_cores
            .iter()
            .find(|(c, _)| *c == cell.cores)
            .expect("prefetched above")
            .1;
        let need_new = groups
            .last()
            .is_none_or(|g| g.cores != cell.cores || g.policy != cell.policy);
        if need_new {
            groups.push(GroupValidation {
                cores: cell.cores,
                policy: cell.policy,
                uncore_spec: experiment_uncore(cell.cores, cell.policy).spec_string(),
                rows: Vec::new(),
                ipc_err: ErrorStats::default(),
                throughput_err: ErrorStats::default(),
                rank: RankAgreement::default(),
            });
        }
        let wsu = |ipcs: &[f64], refs: &[f64]| -> f64 {
            cell.workload
                .benchmarks()
                .iter()
                .zip(ipcs)
                .map(|(&b, ipc)| ipc / refs[b as usize])
                .sum()
        };
        let row = WorkloadValidation {
            name: cell
                .workload
                .benchmarks()
                .iter()
                .map(|&b| suite[b as usize].name())
                .collect::<Vec<_>>()
                .join("+"),
            benchmarks: cell.workload.benchmarks().to_vec(),
            detailed_ipc: det.clone(),
            badco_ipc: bad.clone(),
            detailed_throughput: wsu(det, &pc.detailed_refs),
            badco_throughput: wsu(bad, &pc.badco_refs),
        };
        for (err, &b) in row.thread_errors().iter().zip(&row.benchmarks) {
            stratum_errs[suite[b as usize].nominal_class.index()].push(*err);
        }
        groups.last_mut().expect("pushed above").rows.push(row);
    }

    for g in &mut groups {
        let thread_errs: Vec<f64> = g.rows.iter().flat_map(|r| r.thread_errors()).collect();
        let thr_errs: Vec<f64> = g.rows.iter().map(|r| r.throughput_error()).collect();
        let det_thr: Vec<f64> = g.rows.iter().map(|r| r.detailed_throughput).collect();
        let bad_thr: Vec<f64> = g.rows.iter().map(|r| r.badco_throughput).collect();
        g.ipc_err = ErrorStats::of(&thread_errs);
        g.throughput_err = ErrorStats::of(&thr_errs);
        g.rank = kendall(&det_thr, &bad_thr);
        mps_obs::estimator("validate.ipc.err").record_many(&thread_errs);
        let abs: Vec<f64> = thread_errs.iter().map(|e| e.abs()).collect();
        mps_obs::estimator("validate.ipc.abs_err").record_many(&abs);
        let thr_abs: Vec<f64> = thr_errs.iter().map(|e| e.abs()).collect();
        mps_obs::estimator("validate.thr.abs_err").record_many(&thr_abs);
        mps_obs::event(
            "validate.group.done",
            &[
                ("cores", g.cores.to_string()),
                ("policy", g.policy.to_string()),
                ("mean_abs_err", format!("{}", g.ipc_err.mean_abs)),
                ("inversions", g.rank.discordant.to_string()),
            ],
        );
    }

    let summary = ValidationSummary {
        ipc_err: ErrorStats::pooled(groups.iter().map(|g| &g.ipc_err)),
        throughput_err: ErrorStats::pooled(groups.iter().map(|g| &g.throughput_err)),
        rank_inversions: groups.iter().map(|g| g.rank.discordant).sum(),
        mean_tau: groups.iter().map(|g| g.rank.tau()).sum::<f64>() / groups.len() as f64,
        workloads: groups.iter().map(|g| g.rows.len()).sum(),
        threads: groups.iter().map(|g| g.rows.len() * g.cores).sum(),
    };
    let strata = stratum_errs.map(|errs| ErrorStats::of(&errs));
    span.finish();
    Ok(ValidationReport {
        spec: sweep_spec(ctx, opts),
        opts: opts.clone(),
        groups,
        strata,
        summary,
        wall_ms: t0.elapsed().as_millis(),
    })
}

struct PerCores {
    models: Vec<Arc<BadcoModel>>,
    detailed_refs: Vec<f64>,
    badco_refs: Vec<f64>,
}

struct Cell {
    cores: usize,
    policy: PolicyKind,
    widx: usize,
    workload: Workload,
}

fn pct(x: f64) -> f64 {
    x * 100.0
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "VALIDATION: BADCO vs detailed simulator (schema {VALIDATE_SCHEMA})"
        )?;
        writeln!(f, "  spec: {}", self.spec)?;
        let s = &self.summary;
        writeln!(
            f,
            "  grid: {} groups x {} workloads ({} threads); perturb x{}",
            self.groups.len(),
            self.opts.workloads_per_group,
            s.threads,
            self.opts.perturb
        )?;
        writeln!(
            f,
            "  {:>5} {:>6} {:>3} {:>9} {:>8} {:>8} {:>8} {:>6} {:>4}",
            "cores", "policy", "wl", "mean|e|%", "max|e|%", "bias%", "thr|e|%", "tau", "inv"
        )?;
        for g in &self.groups {
            writeln!(
                f,
                "  {:>5} {:>6} {:>3} {:>9.2} {:>8.2} {:>+8.2} {:>8.2} {:>6.2} {:>4}",
                g.cores,
                g.policy.to_string(),
                g.rows.len(),
                pct(g.ipc_err.mean_abs),
                pct(g.ipc_err.max_abs),
                pct(g.ipc_err.mean_signed),
                pct(g.throughput_err.mean_abs),
                g.rank.tau(),
                g.rank.discordant
            )?;
        }
        writeln!(f, "  per-MPKI-stratum per-thread IPC error:")?;
        for (class, st) in MpkiClass::ALL.iter().zip(&self.strata) {
            writeln!(
                f,
                "  {:>8} n={:<3} mean|e|={:.2}% max|e|={:.2}% bias={:+.2}%",
                class.to_string(),
                st.n,
                pct(st.mean_abs),
                pct(st.max_abs),
                pct(st.mean_signed)
            )?;
        }
        writeln!(
            f,
            "  summary: mean-abs-err={:.2}% max-abs-err={:.2}% bias={:+.2}% thr-err={:.2}% \
             rank-inversions={} tau={:.2} ({} workloads, {} threads)",
            pct(s.ipc_err.mean_abs),
            pct(s.ipc_err.max_abs),
            pct(s.ipc_err.mean_signed),
            pct(s.throughput_err.mean_abs),
            s.rank_inversions,
            s.mean_tau,
            s.workloads,
            s.threads
        )?;
        writeln!(
            f,
            "  timing: wall {} ms (informational; excluded from CSV/JSONL)",
            self.wall_ms
        )
    }
}

impl crate::export::CsvExport for ValidationReport {
    fn csv(&self) -> String {
        let mut out = String::from(
            "cores,policy,workload,detailed_throughput,badco_throughput,\
             throughput_rel_err,mean_abs_thread_err\n",
        );
        for g in &self.groups {
            for r in &g.rows {
                let errs = r.thread_errors();
                out.push_str(&format!(
                    "{},{},{},{},{},{},{}\n",
                    g.cores,
                    g.policy,
                    r.name,
                    r.detailed_throughput,
                    r.badco_throughput,
                    r.throughput_error(),
                    ErrorStats::of(&errs).mean_abs,
                ));
            }
        }
        out
    }
}

/// Joins floats with spaces using the exact shortest-round-trip `Display`
/// form, so JSONL readers recover the bit-identical values.
fn join_f64s(xs: &[f64]) -> String {
    xs.iter()
        .map(|x| format!("{x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

impl ValidationReport {
    /// The schema-versioned JSONL rendering: a header line, one line per
    /// workload, one per group, one per stratum and one summary line, all
    /// in the obs event encoding (so `mps-harness trace`-grade tooling
    /// parses validation reports too). Byte-deterministic — wall-clock is
    /// deliberately excluded.
    pub fn to_jsonl(&self) -> String {
        let ev = mps_obs::jsonl::encode_event;
        let mut out = String::new();
        out.push_str(&ev(
            "validate.header",
            &[
                ("schema", VALIDATE_SCHEMA.to_string()),
                ("spec", self.spec.clone()),
                ("kernel_rev", mps_store::KERNEL_REV.to_string()),
                ("perturb", format!("{}", self.opts.perturb)),
            ],
        ));
        out.push('\n');
        for g in &self.groups {
            for r in &g.rows {
                out.push_str(&ev(
                    "validate.workload",
                    &[
                        ("cores", g.cores.to_string()),
                        ("policy", g.policy.to_string()),
                        ("workload", r.name.clone()),
                        ("detailed_ipc", join_f64s(&r.detailed_ipc)),
                        ("badco_ipc", join_f64s(&r.badco_ipc)),
                        ("detailed_thr", format!("{}", r.detailed_throughput)),
                        ("badco_thr", format!("{}", r.badco_throughput)),
                    ],
                ));
                out.push('\n');
            }
            out.push_str(&ev(
                "validate.group",
                &[
                    ("cores", g.cores.to_string()),
                    ("policy", g.policy.to_string()),
                    ("uncore", g.uncore_spec.clone()),
                    ("workloads", g.rows.len().to_string()),
                    ("mean_abs_err", format!("{}", g.ipc_err.mean_abs)),
                    ("max_abs_err", format!("{}", g.ipc_err.max_abs)),
                    ("mean_err", format!("{}", g.ipc_err.mean_signed)),
                    ("rms_err", format!("{}", g.ipc_err.rms)),
                    ("thr_mean_abs_err", format!("{}", g.throughput_err.mean_abs)),
                    ("tau", format!("{}", g.rank.tau())),
                    ("inversions", g.rank.discordant.to_string()),
                    ("pairs", g.rank.pairs.to_string()),
                ],
            ));
            out.push('\n');
        }
        for (class, st) in MpkiClass::ALL.iter().zip(&self.strata) {
            out.push_str(&ev(
                "validate.stratum",
                &[
                    ("class", class.to_string()),
                    ("n", st.n.to_string()),
                    ("mean_abs_err", format!("{}", st.mean_abs)),
                    ("max_abs_err", format!("{}", st.max_abs)),
                    ("mean_err", format!("{}", st.mean_signed)),
                ],
            ));
            out.push('\n');
        }
        let s = &self.summary;
        out.push_str(&ev(
            "validate.summary",
            &[
                ("schema", VALIDATE_SCHEMA.to_string()),
                ("mean_abs_err", format!("{}", s.ipc_err.mean_abs)),
                ("max_abs_err", format!("{}", s.ipc_err.max_abs)),
                ("mean_err", format!("{}", s.ipc_err.mean_signed)),
                ("rms_err", format!("{}", s.ipc_err.rms)),
                ("thr_mean_abs_err", format!("{}", s.throughput_err.mean_abs)),
                ("rank_inversions", s.rank_inversions.to_string()),
                ("mean_tau", format!("{}", s.mean_tau)),
                ("workloads", s.workloads.to_string()),
                ("threads", s.threads.to_string()),
            ],
        ));
        out.push('\n');
        out
    }
}

/// The baseline a drift gate compares against: the spec and summary
/// parsed back out of a previously emitted JSONL report.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Spec of the baselined sweep (must match the current one exactly).
    pub spec: String,
    /// Summary statistics of the baselined sweep.
    pub mean_abs_err: f64,
    /// Largest absolute per-thread error of the baselined sweep.
    pub max_abs_err: f64,
    /// Total rank inversions of the baselined sweep.
    pub rank_inversions: usize,
}

impl Baseline {
    /// Extracts the baseline from a JSONL validation report.
    ///
    /// # Errors
    ///
    /// A description of what is missing or malformed — including reports
    /// written by a *newer* [`VALIDATE_SCHEMA`], which must be rejected
    /// rather than misread.
    pub fn parse(report: &str) -> Result<Baseline, String> {
        let mut spec = None;
        let mut summary = None;
        for line in report.lines().filter(|l| !l.trim().is_empty()) {
            let Ok(mps_obs::jsonl::Record::Event { name, fields }) = mps_obs::jsonl::parse(line)
            else {
                continue; // torn or foreign line: the named events decide
            };
            let schema: u32 = fields
                .get("schema")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            match name.as_str() {
                "validate.header" => {
                    if schema > VALIDATE_SCHEMA {
                        return Err(format!(
                            "baseline written by future validate schema {schema} \
                             (this build reads <= {VALIDATE_SCHEMA})"
                        ));
                    }
                    spec = fields.get("spec").cloned();
                }
                "validate.summary" => {
                    let f = |k: &str| -> Result<f64, String> {
                        fields
                            .get(k)
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| format!("summary field '{k}' missing or non-numeric"))
                    };
                    summary = Some((
                        f("mean_abs_err")?,
                        f("max_abs_err")?,
                        f("rank_inversions")? as usize,
                    ));
                }
                _ => {}
            }
        }
        let spec = spec.ok_or("no validate.header line in baseline")?;
        let (mean_abs_err, max_abs_err, rank_inversions) =
            summary.ok_or("no validate.summary line in baseline")?;
        Ok(Baseline {
            spec,
            mean_abs_err,
            max_abs_err,
            rank_inversions,
        })
    }

    /// The baseline shipped in the binary for the given spec, if any.
    /// Today that is the `--scale test` default-options sweep (the one CI
    /// gates on); `--baseline FILE` overrides for anything else.
    pub fn embedded(spec: &str) -> Option<Baseline> {
        const EMBEDDED: &[&str] = &[include_str!("../baselines/validate-test.jsonl")];
        EMBEDDED
            .iter()
            .filter_map(|text| Baseline::parse(text).ok())
            .find(|b| b.spec == spec)
    }
}

/// Parsed `--fail-on` drift thresholds.
///
/// Percent-suffixed keys bound the *relative growth* of that error
/// statistic over the baseline (`mean-abs-err=5%`: the mean absolute IPC
/// error may exceed the baseline's by at most 5 % of the baseline value);
/// `rank-inversions=N` bounds the absolute increase in discordant pairs.
/// Shrinking error never fails.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FailOn {
    /// Allowed relative growth of the pooled mean absolute IPC error.
    pub mean_abs_err: Option<f64>,
    /// Allowed relative growth of the largest absolute IPC error.
    pub max_abs_err: Option<f64>,
    /// Allowed increase in total rank inversions.
    pub rank_inversions: Option<usize>,
}

impl FailOn {
    /// Parses `key=value[,key=value...]` with keys `mean-abs-err`,
    /// `max-abs-err` (percent values) and `rank-inversions` (a count).
    ///
    /// # Errors
    ///
    /// A usage message naming the offending entry.
    pub fn parse(s: &str) -> Result<FailOn, String> {
        let mut out = FailOn::default();
        for entry in s.split(',').filter(|e| !e.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("'{entry}' is not key=value"))?;
            let pct = |v: &str| -> Result<f64, String> {
                v.strip_suffix('%')
                    .unwrap_or(v)
                    .parse::<f64>()
                    .ok()
                    .filter(|p| *p >= 0.0)
                    .map(|p| p / 100.0)
                    .ok_or_else(|| format!("'{value}' is not a percentage in '{entry}'"))
            };
            match key {
                "mean-abs-err" => out.mean_abs_err = Some(pct(value)?),
                "max-abs-err" => out.max_abs_err = Some(pct(value)?),
                "rank-inversions" => {
                    out.rank_inversions = Some(
                        value
                            .parse()
                            .map_err(|_| format!("'{value}' is not a count in '{entry}'"))?,
                    );
                }
                other => {
                    return Err(format!(
                        "unknown threshold '{other}' (use mean-abs-err, max-abs-err, \
                         rank-inversions)"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Every threshold the report breaches against the baseline, as
    /// human-readable verdicts; empty means the gate passes.
    ///
    /// A spec mismatch is reported as a breach of its own kind — gating
    /// against a baseline from a different sweep would be meaningless.
    pub fn breaches(&self, report: &ValidationReport, baseline: &Baseline) -> Vec<String> {
        let mut out = Vec::new();
        if report.spec != baseline.spec {
            out.push(format!(
                "baseline spec mismatch: report is '{}' but baseline is '{}' \
                 (re-baseline per docs/validation.md)",
                report.spec, baseline.spec
            ));
            return out;
        }
        let s = &report.summary;
        let rel = |cur: f64, base: f64, allowed: f64, what: &str| -> Option<String> {
            let limit = base * (1.0 + allowed);
            (cur > limit).then(|| {
                format!(
                    "{what} drifted: {:.3}% vs baseline {:.3}% (allowed +{}%: {:.3}%)",
                    pct(cur),
                    pct(base),
                    pct(allowed),
                    pct(limit)
                )
            })
        };
        if let Some(allowed) = self.mean_abs_err {
            out.extend(rel(
                s.ipc_err.mean_abs,
                baseline.mean_abs_err,
                allowed,
                "mean-abs-err",
            ));
        }
        if let Some(allowed) = self.max_abs_err {
            out.extend(rel(
                s.ipc_err.max_abs,
                baseline.max_abs_err,
                allowed,
                "max-abs-err",
            ));
        }
        if let Some(allowed) = self.rank_inversions {
            let limit = baseline.rank_inversions + allowed;
            if s.rank_inversions > limit {
                out.push(format!(
                    "rank-inversions drifted: {} vs baseline {} (allowed +{allowed})",
                    s.rank_inversions, baseline.rank_inversions
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(mean_abs: f64, max_abs: f64, inversions: usize) -> ValidationReport {
        ValidationReport {
            spec: "spec-a".to_owned(),
            opts: ValidateOptions::default(),
            groups: Vec::new(),
            strata: [ErrorStats::default(); 3],
            summary: ValidationSummary {
                ipc_err: ErrorStats {
                    n: 10,
                    mean_abs,
                    max_abs,
                    ..ErrorStats::default()
                },
                rank_inversions: inversions,
                ..ValidationSummary::default()
            },
            wall_ms: 0,
        }
    }

    fn baseline() -> Baseline {
        Baseline {
            spec: "spec-a".to_owned(),
            mean_abs_err: 0.10,
            max_abs_err: 0.30,
            rank_inversions: 6,
        }
    }

    #[test]
    fn fail_on_parses_the_documented_form() {
        let f = FailOn::parse("mean-abs-err=5%,rank-inversions=3").unwrap();
        assert_eq!(f.mean_abs_err, Some(0.05));
        assert_eq!(f.rank_inversions, Some(3));
        assert_eq!(f.max_abs_err, None);
        assert!(FailOn::parse("mean-abs-err=five").is_err());
        assert!(FailOn::parse("bogus=1").is_err());
        assert!(FailOn::parse("mean-abs-err").is_err());
    }

    #[test]
    fn identical_run_passes_every_gate() {
        let f = FailOn::parse("mean-abs-err=5%,max-abs-err=5%,rank-inversions=0").unwrap();
        let rep = report_with(0.10, 0.30, 6);
        assert!(f.breaches(&rep, &baseline()).is_empty());
    }

    #[test]
    fn relative_growth_beyond_allowance_breaches() {
        let f = FailOn::parse("mean-abs-err=5%").unwrap();
        // 10% -> 10.4%: inside the 5% relative allowance.
        assert!(f
            .breaches(&report_with(0.104, 0.3, 6), &baseline())
            .is_empty());
        // 10% -> 12%: 20% relative growth, breach.
        let b = f.breaches(&report_with(0.12, 0.3, 6), &baseline());
        assert_eq!(b.len(), 1);
        assert!(b[0].contains("mean-abs-err drifted"), "{}", b[0]);
    }

    #[test]
    fn inversion_growth_is_gated_absolutely() {
        let f = FailOn::parse("rank-inversions=3").unwrap();
        assert!(f
            .breaches(&report_with(0.1, 0.3, 9), &baseline())
            .is_empty());
        assert_eq!(f.breaches(&report_with(0.1, 0.3, 10), &baseline()).len(), 1);
    }

    #[test]
    fn improvement_never_fails() {
        let f = FailOn::parse("mean-abs-err=0%,max-abs-err=0%,rank-inversions=0").unwrap();
        assert!(f
            .breaches(&report_with(0.05, 0.2, 2), &baseline())
            .is_empty());
    }

    #[test]
    fn spec_mismatch_is_its_own_breach() {
        let f = FailOn::parse("mean-abs-err=5%").unwrap();
        let mut rep = report_with(0.1, 0.3, 6);
        rep.spec = "spec-b".to_owned();
        let b = f.breaches(&rep, &baseline());
        assert_eq!(b.len(), 1);
        assert!(b[0].contains("spec mismatch"));
    }

    #[test]
    fn baseline_round_trips_through_jsonl() {
        let rep = report_with(0.1234, 0.456, 7);
        let parsed = Baseline::parse(&rep.to_jsonl()).unwrap();
        assert_eq!(parsed.spec, "spec-a");
        assert_eq!(parsed.mean_abs_err, 0.1234, "bit-exact round trip");
        assert_eq!(parsed.max_abs_err, 0.456);
        assert_eq!(parsed.rank_inversions, 7);
    }

    #[test]
    fn future_schema_baseline_is_rejected() {
        let text = report_with(0.1, 0.3, 6).to_jsonl().replace(
            &format!("\"schema\":\"{VALIDATE_SCHEMA}\""),
            &format!("\"schema\":\"{}\"", VALIDATE_SCHEMA + 1),
        );
        let err = Baseline::parse(&text).unwrap_err();
        assert!(err.contains("future validate schema"), "{err}");
    }

    #[test]
    fn garbage_baseline_is_an_error_not_a_panic() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("not json at all\n").is_err());
    }

    #[test]
    fn options_are_validated() {
        let ctx = StudyContext::new(crate::Scale::test());
        let bad = ValidateOptions {
            core_counts: vec![3],
            ..ValidateOptions::default()
        };
        assert!(run(&ctx, &bad).is_err());
        let bad = ValidateOptions {
            perturb: f64::NAN,
            ..ValidateOptions::default()
        };
        assert!(run(&ctx, &bad).is_err());
        let bad = ValidateOptions {
            workloads_per_group: 0,
            ..ValidateOptions::default()
        };
        assert!(run(&ctx, &bad).is_err());
    }

    #[test]
    fn spec_string_covers_grid_knobs_but_not_perturbation() {
        let base = ValidateOptions::default().spec_string();
        let wider = ValidateOptions {
            workloads_per_group: 9,
            ..ValidateOptions::default()
        }
        .spec_string();
        assert_ne!(base, wider, "grid shape must show in the spec");
        assert!(base.contains("w=6"));
        // A perturbed model must masquerade as the real one so the drift
        // gate can catch it against the honest baseline.
        let perturbed = ValidateOptions {
            perturb: 0.5,
            ..ValidateOptions::default()
        }
        .spec_string();
        assert_eq!(base, perturbed);
    }
}

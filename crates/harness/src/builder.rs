//! [`StudyBuilder`]: the one documented way to configure a
//! [`StudyContext`].
//!
//! The pre-durability constructors (`StudyContext::new`,
//! `StudyContext::with_jobs`) could only pick a scale and a worker count;
//! durable runs add an artifact store and a resume switch, and rather
//! than grow a third positional constructor the configuration moved to a
//! builder:
//!
//! ```no_run
//! use mps_harness::{Scale, StudyContext};
//!
//! let ctx = StudyContext::builder()
//!     .scale(Scale::small())
//!     .jobs(8)
//!     .store("study-store")
//!     .resume(true)
//!     .build()?;
//! # Ok::<(), mps_harness::Error>(())
//! ```
//!
//! Every knob has a default (`Scale::default()`, `MPS_JOBS`/available
//! parallelism, no store, no resume), so `StudyContext::builder().build()`
//! is a valid minimal call. `build` only fails when a *requested* store
//! directory cannot be opened — an in-memory context never fails.

use crate::runner::StudyContext;
use crate::scale::Scale;
use mps_store::{Error, Store};
use std::path::PathBuf;
use std::sync::Arc;

/// Configures and constructs a [`StudyContext`]. See the
/// [module docs](self) for the full story.
#[derive(Debug, Clone, Default)]
#[must_use = "a builder does nothing until .build() is called"]
pub struct StudyBuilder {
    scale: Option<Scale>,
    jobs: Option<usize>,
    store: Option<PathBuf>,
    resume: bool,
}

impl StudyBuilder {
    /// Starts from all defaults (equivalent to
    /// [`StudyContext::builder`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The scaling preset (default: [`Scale::default`], i.e. `small`).
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Worker threads for parallel builds and resampling (default:
    /// `MPS_JOBS`, else the machine's available parallelism). Values are
    /// clamped to at least 1.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Attaches a persistent artifact store rooted at `path` (created if
    /// absent). Expensive artifacts are then loaded-or-computed across
    /// processes, and experiment grids checkpoint their progress there.
    pub fn store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store = Some(path.into());
        self
    }

    /// Detaches any previously requested store (used by `--no-store` to
    /// override `MPS_STORE`).
    pub fn no_store(mut self) -> Self {
        self.store = None;
        self
    }

    /// Whether experiment grids resume from checkpoint logs left by an
    /// interrupted run (default: `false`, which truncates stale logs).
    /// Only meaningful together with [`Self::store`].
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Builds the context.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when a requested store directory cannot be created
    /// or opened; [`Error::InvalidInput`] when `resume` is requested
    /// without a store (a resume without persisted state is a silent
    /// fresh run — refused so the caller notices).
    pub fn build(self) -> Result<StudyContext, Error> {
        let store = match &self.store {
            Some(path) => Some(Arc::new(Store::open(path)?)),
            None => {
                if self.resume {
                    return Err(Error::InvalidInput(
                        "resume requires an artifact store (set .store(path) or --store)"
                            .to_owned(),
                    ));
                }
                None
            }
        };
        Ok(StudyContext::assemble(
            self.scale.unwrap_or_default(),
            self.jobs.unwrap_or_else(mps_par::default_jobs),
            store,
            self.resume,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_in_memory_context() {
        let ctx = StudyBuilder::new().build().unwrap();
        assert_eq!(ctx.scale, Scale::default());
        assert!(ctx.jobs() >= 1);
        assert!(ctx.store().is_none());
        assert!(!ctx.resume());
    }

    #[test]
    fn resume_without_store_is_refused() {
        let err = StudyBuilder::new().resume(true).build().unwrap_err();
        assert!(matches!(err, Error::InvalidInput(_)), "{err}");
    }

    #[test]
    fn store_and_resume_round_trip() {
        let dir = std::env::temp_dir().join(format!("mps-builder-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = StudyContext::builder()
            .scale(Scale::test())
            .jobs(2)
            .store(&dir)
            .resume(true)
            .build()
            .unwrap();
        assert!(ctx.store().is_some());
        assert!(ctx.resume());
        assert_eq!(ctx.jobs(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_store_overrides_earlier_store() {
        let ctx = StudyBuilder::new()
            .store("ignored")
            .no_store()
            .build()
            .unwrap();
        assert!(ctx.store().is_none());
    }
}

//! CSV export of experiment reports (for plotting outside the terminal),
//! and the schema-versioned [`Artifact`] envelope the store uses to
//! persist rendered reports.
//!
//! Every report renders to a small CSV with one header row; the harness
//! binary writes them under `--out <dir>` alongside the text renderings.
//! The writer is deliberately minimal — all fields are numeric or simple
//! identifiers, so no quoting is required beyond comma-freedom, which is
//! asserted. The `--out` file formats are part of the repo's golden
//! contract and carry no version header; versioning lives in [`Artifact`],
//! the container for store-persisted report records.

use crate::experiments::{
    AblationReport, ConfidenceCurves, CpiAccuracyReport, Fig1Report, Fig3Report, GuidelineReport,
    InvCvReport, MpkiReport, SpeedReport,
};
use mps_store::{Dec, Enc, Error};

/// A rendered experiment report as a store-persistable, schema-versioned
/// record: a JSON header line (`{"schema":2,"name":"fig3"}`) followed by
/// the text and CSV renderings.
///
/// Schema history — every bump keeps the reader accepting all earlier
/// versions back to [`mps_store::MIN_SCHEMA`], with a unit test per
/// accepted version:
///
/// * **1** — text rendering only.
/// * **2** (current, [`mps_store::SCHEMA`]) — text + CSV renderings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Experiment name (e.g. `"fig3"`).
    pub name: String,
    /// The text (terminal) rendering.
    pub text: String,
    /// The CSV rendering; empty for reports without one (and for records
    /// read back from schema-1 files, which predate CSV persistence).
    pub csv: String,
}

impl Artifact {
    /// Serializes at the current schema.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "{{\"schema\":{},\"name\":\"{}\"}}\n",
            mps_store::SCHEMA,
            self.name
        )
        .into_bytes();
        let mut e = Enc::new();
        e.str(&self.text);
        e.str(&self.csv);
        out.extend_from_slice(&e.into_bytes());
        out
    }

    /// Deserializes any accepted schema (`MIN_SCHEMA..=SCHEMA`).
    ///
    /// # Errors
    ///
    /// [`Error::SchemaVersion`] for records written by a newer harness;
    /// [`Error::Corrupt`] for malformed headers or payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<Artifact, Error> {
        let corrupt = |detail: &str| Error::Corrupt {
            path: "report-artifact".to_owned(),
            detail: detail.to_owned(),
        };
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| corrupt("missing header line"))?;
        let header =
            std::str::from_utf8(&bytes[..nl]).map_err(|_| corrupt("header is not UTF-8"))?;
        let schema = header
            .split("\"schema\":")
            .nth(1)
            .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|digits| digits.parse::<u32>().ok())
            .ok_or_else(|| corrupt("header has no schema field"))?;
        if !(mps_store::MIN_SCHEMA..=mps_store::SCHEMA).contains(&schema) {
            return Err(Error::SchemaVersion {
                path: "report-artifact".to_owned(),
                found: schema,
                supported: mps_store::SCHEMA,
            });
        }
        let name = header
            .split("\"name\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .ok_or_else(|| corrupt("header has no name field"))?
            .to_owned();
        let mut d = Dec::new(&bytes[nl + 1..], "report-artifact");
        let text = d.str()?;
        // Schema 1 records end after the text rendering.
        let csv = if schema >= 2 { d.str()? } else { String::new() };
        d.finish()?;
        Ok(Artifact { name, text, csv })
    }
}

/// A report that can be exported as CSV.
pub trait CsvExport {
    /// The CSV rendering, header row first.
    fn csv(&self) -> String;
}

fn field(s: &str) -> &str {
    assert!(
        !s.contains(',') && !s.contains('\n'),
        "CSV fields must be comma- and newline-free: {s:?}"
    );
    s
}

impl CsvExport for Fig1Report {
    fn csv(&self) -> String {
        let mut out = String::from("abscissa,confidence\n");
        for (x, c) in &self.points {
            out.push_str(&format!("{x},{c}\n"));
        }
        out
    }
}

impl CsvExport for Fig3Report {
    fn csv(&self) -> String {
        let mut out = String::from("cores,sample_size,model,experiment\n");
        for &(k, w, a, e) in &self.points {
            out.push_str(&format!("{k},{w},{a},{e}\n"));
        }
        out
    }
}

impl CsvExport for InvCvReport {
    fn csv(&self) -> String {
        let mut out = String::from("pair,metric,detailed_sample,badco_sample,badco_population\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{}>{},{},{},{},{}\n",
                r.x,
                r.y,
                field(r.metric.short_name()),
                r.detailed_sample.map_or(String::new(), |v| v.to_string()),
                r.badco_sample.map_or(String::new(), |v| v.to_string()),
                r.badco_population,
            ));
        }
        out
    }
}

impl CsvExport for ConfidenceCurves {
    fn csv(&self) -> String {
        let mut out = String::from("pair,method,sample_size,confidence\n");
        for p in &self.panels {
            for (m, w, c) in &p.series {
                out.push_str(&format!("{}>{},{},{w},{c}\n", p.y, p.x, field(m)));
            }
        }
        out
    }
}

impl CsvExport for SpeedReport {
    fn csv(&self) -> String {
        let mut out = String::from("cores,detailed_mips,badco_mips,speedup\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{}\n",
                r.cores,
                r.detailed_mips,
                r.badco_mips,
                r.speedup()
            ));
        }
        out
    }
}

impl CsvExport for CpiAccuracyReport {
    fn csv(&self) -> String {
        let mut out = String::from("cores,benchmark,detailed_cpi,badco_cpi,rel_error\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                p.cores,
                field(&p.benchmark),
                p.detailed_cpi,
                p.badco_cpi,
                p.relative_error()
            ));
        }
        out
    }
}

impl CsvExport for MpkiReport {
    fn csv(&self) -> String {
        let mut out = String::from("benchmark,nominal_class,mpki,measured_class,match\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                field(&r.name),
                r.nominal,
                r.measured_mpki,
                r.measured_class,
                r.nominal == r.measured_class
            ));
        }
        out
    }
}

impl CsvExport for AblationReport {
    fn csv(&self) -> String {
        let mut out = String::from("configuration,strata,confidence\n");
        for r in &self.rows {
            // Configurations contain spaces but never commas.
            out.push_str(&format!(
                "{},{},{}\n",
                field(&r.config),
                r.strata,
                r.confidence
            ));
        }
        out
    }
}

impl CsvExport for GuidelineReport {
    fn csv(&self) -> String {
        let mut out = String::from("pair,metric,cv,recommendation\n");
        for r in &self.rows {
            let rec = match r.recommendation {
                mps_sampling::Recommendation::Equivalent { .. } => "equivalent".to_owned(),
                mps_sampling::Recommendation::BalancedRandom { sample_size, .. } => {
                    format!("balanced-random W={sample_size}")
                }
                mps_sampling::Recommendation::WorkloadStratification {
                    random_equivalent, ..
                } => format!("workload-strata (random W={random_equivalent})"),
            };
            out.push_str(&format!(
                "{} vs {},{},{},{}\n",
                r.y,
                r.x,
                field(r.metric.short_name()),
                r.cv,
                rec
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig1;

    #[test]
    fn fig1_csv_has_header_and_rows() {
        let csv = fig1().csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "abscissa,confidence");
        assert_eq!(lines.len(), 42);
        assert!(lines[21].starts_with("0,0.5"));
    }

    #[test]
    fn every_line_has_constant_column_count() {
        let csv = fig1().csv();
        let cols = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
    }

    #[test]
    fn artifact_schema_2_round_trips() {
        let a = Artifact {
            name: "fig3".to_owned(),
            text: "FIGURE 3.\nrows\n".to_owned(),
            csv: "a,b\n1,2\n".to_owned(),
        };
        let bytes = a.to_bytes();
        assert!(bytes.starts_with(b"{\"schema\":2,"));
        assert_eq!(Artifact::from_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn artifact_reader_accepts_schema_1() {
        // A schema-1 record: header + text only, no CSV section.
        let mut bytes = b"{\"schema\":1,\"name\":\"table4\"}\n".to_vec();
        let mut e = mps_store::Enc::new();
        e.str("TABLE IV.\n");
        bytes.extend_from_slice(&e.into_bytes());
        let a = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(a.name, "table4");
        assert_eq!(a.text, "TABLE IV.\n");
        assert_eq!(a.csv, "", "schema 1 predates CSV persistence");
    }

    #[test]
    fn artifact_reader_rejects_future_schema() {
        let a = Artifact {
            name: "fig3".to_owned(),
            text: "t".to_owned(),
            csv: String::new(),
        };
        let bytes = String::from_utf8(a.to_bytes())
            .unwrap()
            .replace("\"schema\":2", "\"schema\":99");
        match Artifact::from_bytes(bytes.as_bytes()) {
            Err(Error::SchemaVersion { found: 99, .. }) => {}
            other => panic!("wanted SchemaVersion error, got {other:?}"),
        }
    }

    #[test]
    fn artifact_corrupt_payloads_error_not_panic() {
        assert!(Artifact::from_bytes(b"no newline here").is_err());
        assert!(Artifact::from_bytes(b"{\"schema\":2,\"name\":\"x\"}\n\x05").is_err());
        assert!(Artifact::from_bytes(b"{\"name\":\"x\"}\npayload").is_err());
    }
}

//! CSV export of experiment reports (for plotting outside the terminal).
//!
//! Every report renders to a small CSV with one header row; the harness
//! binary writes them under `--out <dir>` alongside the text renderings.
//! The writer is deliberately minimal — all fields are numeric or simple
//! identifiers, so no quoting is required beyond comma-freedom, which is
//! asserted.

use crate::experiments::{
    AblationReport, ConfidenceCurves, CpiAccuracyReport, Fig1Report, Fig3Report, GuidelineReport,
    InvCvReport, MpkiReport, SpeedReport,
};

/// A report that can be exported as CSV.
pub trait CsvExport {
    /// The CSV rendering, header row first.
    fn csv(&self) -> String;
}

fn field(s: &str) -> &str {
    assert!(
        !s.contains(',') && !s.contains('\n'),
        "CSV fields must be comma- and newline-free: {s:?}"
    );
    s
}

impl CsvExport for Fig1Report {
    fn csv(&self) -> String {
        let mut out = String::from("abscissa,confidence\n");
        for (x, c) in &self.points {
            out.push_str(&format!("{x},{c}\n"));
        }
        out
    }
}

impl CsvExport for Fig3Report {
    fn csv(&self) -> String {
        let mut out = String::from("cores,sample_size,model,experiment\n");
        for &(k, w, a, e) in &self.points {
            out.push_str(&format!("{k},{w},{a},{e}\n"));
        }
        out
    }
}

impl CsvExport for InvCvReport {
    fn csv(&self) -> String {
        let mut out = String::from("pair,metric,detailed_sample,badco_sample,badco_population\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{}>{},{},{},{},{}\n",
                r.x,
                r.y,
                field(r.metric.short_name()),
                r.detailed_sample.map_or(String::new(), |v| v.to_string()),
                r.badco_sample.map_or(String::new(), |v| v.to_string()),
                r.badco_population,
            ));
        }
        out
    }
}

impl CsvExport for ConfidenceCurves {
    fn csv(&self) -> String {
        let mut out = String::from("pair,method,sample_size,confidence\n");
        for p in &self.panels {
            for (m, w, c) in &p.series {
                out.push_str(&format!("{}>{},{},{w},{c}\n", p.y, p.x, field(m)));
            }
        }
        out
    }
}

impl CsvExport for SpeedReport {
    fn csv(&self) -> String {
        let mut out = String::from("cores,detailed_mips,badco_mips,speedup\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{}\n",
                r.cores,
                r.detailed_mips,
                r.badco_mips,
                r.speedup()
            ));
        }
        out
    }
}

impl CsvExport for CpiAccuracyReport {
    fn csv(&self) -> String {
        let mut out = String::from("cores,benchmark,detailed_cpi,badco_cpi,rel_error\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                p.cores,
                field(&p.benchmark),
                p.detailed_cpi,
                p.badco_cpi,
                p.relative_error()
            ));
        }
        out
    }
}

impl CsvExport for MpkiReport {
    fn csv(&self) -> String {
        let mut out = String::from("benchmark,nominal_class,mpki,measured_class,match\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                field(&r.name),
                r.nominal,
                r.measured_mpki,
                r.measured_class,
                r.nominal == r.measured_class
            ));
        }
        out
    }
}

impl CsvExport for AblationReport {
    fn csv(&self) -> String {
        let mut out = String::from("configuration,strata,confidence\n");
        for r in &self.rows {
            // Configurations contain spaces but never commas.
            out.push_str(&format!(
                "{},{},{}\n",
                field(&r.config),
                r.strata,
                r.confidence
            ));
        }
        out
    }
}

impl CsvExport for GuidelineReport {
    fn csv(&self) -> String {
        let mut out = String::from("pair,metric,cv,recommendation\n");
        for r in &self.rows {
            let rec = match r.recommendation {
                mps_sampling::Recommendation::Equivalent { .. } => "equivalent".to_owned(),
                mps_sampling::Recommendation::BalancedRandom { sample_size, .. } => {
                    format!("balanced-random W={sample_size}")
                }
                mps_sampling::Recommendation::WorkloadStratification {
                    random_equivalent, ..
                } => format!("workload-strata (random W={random_equivalent})"),
            };
            out.push_str(&format!(
                "{} vs {},{},{},{}\n",
                r.y,
                r.x,
                field(r.metric.short_name()),
                r.cv,
                rec
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig1;

    #[test]
    fn fig1_csv_has_header_and_rows() {
        let csv = fig1().csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "abscissa,confidence");
        assert_eq!(lines.len(), 42);
        assert!(lines[21].starts_with("0,0.5"));
    }

    #[test]
    fn every_line_has_constant_column_count() {
        let csv = fig1().csv();
        let cols = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
    }
}

//! Fault-isolated experiment execution: panics become [`Error`]s, hung
//! experiments time out, and transient failures get a bounded retry.
//!
//! One failing experiment must not take down a multi-experiment study:
//! `mps-harness all` runs every experiment through [`run_isolated`], so a
//! panic or hang in one figure is reported (and exits nonzero at the end)
//! while the remaining figures still run — and, with a store attached,
//! everything already computed stays reusable by the rerun.

use mps_store::{Error, Result};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Duration;

/// Retry/timeout policy for [`run_isolated`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IsolateOptions {
    /// Wall-clock budget per attempt; `None` waits forever.
    pub timeout: Option<Duration>,
    /// Extra attempts after the first failure (0 = fail fast).
    pub retries: u32,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `work` on a dedicated thread, catching panics and enforcing the
/// per-attempt timeout, with up to `opts.retries` repeat attempts.
///
/// `work` must be `Fn` (not `FnOnce`) so a failed attempt can be retried;
/// experiments are pure functions of a `StudyContext`, so reruns are safe
/// and — thanks to the deterministic seeding — identical.
///
/// # Errors
///
/// [`Error::WorkerPanic`] when every attempt panicked,
/// [`Error::Timeout`] when every attempt exceeded the budget (the
/// runaway worker thread is detached, not killed — its result is
/// discarded), or the last inner error when `work` itself fails.
pub fn run_isolated<T, F>(what: &str, opts: IsolateOptions, work: F) -> Result<T>
where
    T: Send + 'static,
    F: Fn() -> Result<T> + Send + Sync,
{
    let attempt_hist = mps_obs::histogram("isolate.attempt.latency_us");
    let mut last_err: Option<Error> = None;
    for attempt in 0..=opts.retries {
        if attempt > 0 {
            mps_obs::counter("isolate.retry").incr();
            mps_obs::event(
                "isolate.retry",
                &[("what", what.to_owned()), ("attempt", attempt.to_string())],
            );
        }
        let started = std::time::Instant::now();
        let outcome = std::thread::scope(|s| -> Result<T> {
            let (tx, rx) = mpsc::channel();
            let work = &work;
            let worker = std::thread::Builder::new()
                .name(format!("isolate-{what}"))
                .spawn_scoped(s, move || {
                    let result =
                        catch_unwind(AssertUnwindSafe(work)).map_err(|p| Error::WorkerPanic {
                            what: what.to_owned(),
                            detail: panic_message(p),
                        });
                    // The receiver may have timed out and gone away.
                    let _ = tx.send(result);
                })
                .map_err(|e| Error::Io(format!("spawning isolate worker: {e}")))?;
            match opts.timeout {
                None => {
                    let r = rx.recv().map_err(|_| Error::Interrupted {
                        what: what.to_owned(),
                    })?;
                    let _ = worker.join();
                    r?
                }
                Some(budget) => match rx.recv_timeout(budget) {
                    Ok(r) => {
                        let _ = worker.join();
                        r?
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // The worker is still running; a scoped thread
                        // must be joined, so wait for it but report the
                        // timeout. (Experiments poll nothing external, so
                        // a hang here means a simulator bug — the join
                        // keeps memory safety, the error keeps honesty.)
                        let r = Err(Error::Timeout {
                            what: what.to_owned(),
                            // Whole-second budgets (the CLI flag) report
                            // exactly; sub-second ones round up.
                            secs: budget.as_secs_f64().ceil() as u64,
                        });
                        let _ = worker.join();
                        r
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        let _ = worker.join();
                        Err(Error::Interrupted {
                            what: what.to_owned(),
                        })
                    }
                },
            }
        });
        attempt_hist.record_duration(started.elapsed());
        match outcome {
            Ok(v) => return Ok(v),
            Err(e) => {
                if matches!(e, Error::Timeout { .. }) {
                    mps_obs::counter("isolate.timeout").incr();
                }
                let retryable = matches!(e, Error::WorkerPanic { .. } | Error::Io(_));
                last_err = Some(e);
                if !retryable {
                    break;
                }
            }
        }
    }
    Err(last_err.expect("loop ran at least once"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn success_passes_value_through() {
        let v = run_isolated("ok", IsolateOptions::default(), || Ok(41 + 1)).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn panic_becomes_worker_panic_error() {
        let err = run_isolated("boom", IsolateOptions::default(), || -> Result<()> {
            panic!("exploded at cell 7")
        })
        .unwrap_err();
        match err {
            Error::WorkerPanic { what, detail } => {
                assert_eq!(what, "boom");
                assert!(detail.contains("exploded at cell 7"), "{detail}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn panics_are_retried_to_success() {
        let attempts = AtomicU32::new(0);
        let v = run_isolated(
            "flaky",
            IsolateOptions {
                timeout: None,
                retries: 2,
            },
            || {
                if attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("transient");
                }
                Ok(7)
            },
        )
        .unwrap();
        assert_eq!(v, 7);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn domain_errors_are_not_retried() {
        let attempts = AtomicU32::new(0);
        let err = run_isolated(
            "invalid",
            IsolateOptions {
                timeout: None,
                retries: 5,
            },
            || -> Result<()> {
                attempts.fetch_add(1, Ordering::SeqCst);
                Err(Error::InvalidInput("bad cores".to_owned()))
            },
        )
        .unwrap_err();
        assert!(matches!(err, Error::InvalidInput(_)), "{err}");
        assert_eq!(attempts.load(Ordering::SeqCst), 1, "no retry on bad input");
    }

    #[test]
    fn slow_work_times_out() {
        let err = run_isolated(
            "sleepy",
            IsolateOptions {
                timeout: Some(Duration::from_millis(20)),
                retries: 0,
            },
            || {
                std::thread::sleep(Duration::from_millis(100));
                Ok(())
            },
        )
        .unwrap_err();
        match err {
            Error::Timeout { what, secs } => {
                assert_eq!(what, "sleepy");
                assert!(secs > 0);
            }
            other => panic!("wrong error: {other}"),
        }
    }
}

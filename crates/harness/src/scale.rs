//! Experiment scaling presets.
//!
//! The paper's setup — 100 M instructions per thread, the full
//! 12650-workload 4-core population, 10000 resamples — takes CPU-months.
//! This reproduction keeps every experiment *structurally identical* and
//! scales three knobs: trace length, population (sub)sample sizes, and
//! resample counts. Relative comparisons (who wins, who is faster, where
//! the crossovers fall) survive the scaling; see `EXPERIMENTS.md`.

/// Sizing of all experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scale {
    /// Instructions per thread (the paper: 100 M).
    pub trace_len: u64,
    /// 4-core population: number of workloads simulated with BADCO
    /// (paper: the full 12650; smaller values draw a random subsample).
    pub pop_4core: usize,
    /// 8-core population sample (paper: 10000 of 4.3 M).
    pub pop_8core: usize,
    /// Resamples per empirical-confidence point (paper: 1000–10000).
    pub confidence_samples: usize,
    /// Workloads simulated with the detailed simulator where figures call
    /// for it (paper: 250).
    pub detailed_sample: usize,
    /// Random workloads per core count for the CPI-accuracy scatter
    /// (Figure 2).
    pub accuracy_workloads: usize,
    /// Sample sizes (x-axis) for the confidence curves.
    pub sample_sizes: Vec<usize>,
    /// Master seed; every experiment forks its own stream from this.
    pub seed: u64,
}

impl Scale {
    /// Tiny preset for integration tests (seconds, debug builds).
    pub fn test() -> Self {
        Scale {
            trace_len: 2_500,
            pop_4core: 50,
            pop_8core: 30,
            confidence_samples: 150,
            detailed_sample: 8,
            accuracy_workloads: 4,
            sample_sizes: vec![5, 10, 20, 40],
            seed: 0xC0FFEE,
        }
    }

    /// Default preset: minutes per experiment on one CPU (release build).
    pub fn small() -> Self {
        Scale {
            trace_len: 10_000,
            pop_4core: 800,
            pop_8core: 400,
            confidence_samples: 1_000,
            detailed_sample: 60,
            accuracy_workloads: 25,
            sample_sizes: vec![10, 20, 30, 40, 50, 60, 80, 100, 140, 200, 300, 500],
            seed: 0xC0FFEE,
        }
    }

    /// Paper-sized preset (hours to days on one CPU).
    pub fn full() -> Self {
        Scale {
            trace_len: 100_000,
            pop_4core: 12_650,
            pop_8core: 10_000,
            confidence_samples: 10_000,
            detailed_sample: 250,
            accuracy_workloads: 250,
            sample_sizes: vec![
                10, 20, 30, 40, 50, 60, 80, 100, 120, 140, 160, 180, 200, 300, 400, 500, 600, 700,
                800,
            ],
            seed: 0xC0FFEE,
        }
    }

    /// Parses `"test"`, `"small"` or `"full"`.
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "test" => Some(Scale::test()),
            "small" => Some(Scale::small()),
            "full" => Some(Scale::full()),
            _ => None,
        }
    }

    /// Whether the 4-core population at this scale is the complete one.
    pub fn pop_4core_is_full(&self) -> bool {
        self.pop_4core >= 12_650
    }

    /// Canonical fingerprint of every sizing knob, used in artifact-store
    /// keys: two scales with equal spec strings produce interchangeable
    /// artifacts, and any knob change invalidates the store keys that
    /// depend on it.
    pub fn spec_string(&self) -> String {
        let sizes: Vec<String> = self.sample_sizes.iter().map(|n| n.to_string()).collect();
        format!(
            "tl={},p4={},p8={},cs={},ds={},aw={},ws={},seed={:x}",
            self.trace_len,
            self.pop_4core,
            self.pop_8core,
            self.confidence_samples,
            self.detailed_sample,
            self.accuracy_workloads,
            sizes.join("-"),
            self.seed
        )
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!(Scale::parse("test"), Some(Scale::test()));
        assert_eq!(Scale::parse("small"), Some(Scale::small()));
        assert_eq!(Scale::parse("full"), Some(Scale::full()));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn full_scale_matches_paper_populations() {
        let f = Scale::full();
        assert!(f.pop_4core_is_full());
        assert_eq!(f.pop_8core, 10_000);
        assert_eq!(f.detailed_sample, 250);
    }

    #[test]
    fn scales_are_ordered() {
        let t = Scale::test();
        let s = Scale::small();
        let f = Scale::full();
        assert!(t.trace_len < s.trace_len && s.trace_len < f.trace_len);
        assert!(t.pop_4core < s.pop_4core && s.pop_4core < f.pop_4core);
    }
}

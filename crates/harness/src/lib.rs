//! Experiment harness: regenerates every table and figure of the paper.
//!
//! | Artifact | Paper content | Module |
//! |----------|---------------|--------|
//! | Table I   | core configuration | [`experiments::tables`] |
//! | Table II  | uncore configurations | [`experiments::tables`] |
//! | Table III | detailed vs BADCO simulation speed | [`experiments::accuracy`] |
//! | Table IV  | benchmark MPKI classification | [`experiments::tables`] |
//! | Figure 1  | analytic confidence curve | [`experiments::confidence`] |
//! | Figure 2  | detailed vs BADCO CPI scatter | [`experiments::accuracy`] |
//! | Figure 3  | confidence vs sample size: model vs experiment | [`experiments::confidence`] |
//! | Figure 4  | 1/cv per policy pair × metric (sample vs population) | [`experiments::cv`] |
//! | Figure 5  | 1/cv on the full population, 3 metrics | [`experiments::cv`] |
//! | Figure 6  | confidence of 4 sampling methods | [`experiments::confidence`] |
//! | Figure 7  | actual (detailed-sim) confidence | [`experiments::confidence`] |
//! | §VII-A    | CPU-hours overhead example | [`experiments::overhead`] |
//!
//! Everything is driven by a [`Scale`]: the paper's setup (100 M
//! instructions, full 12650-workload 4-core population) is reproduced in
//! miniature by default so each experiment finishes in seconds-to-minutes
//! on one CPU, with `--scale full` restoring paper-sized runs. A
//! [`StudyContext`] caches the expensive artifacts (BADCO models,
//! per-policy population throughput tables) across experiments.

pub mod builder;
pub mod convergence;
pub mod experiments;
pub mod export;
pub mod heartbeat;
pub mod isolate;
pub mod persist;
pub mod plot;
pub mod report_html;
pub mod runner;
pub mod scale;
pub mod validate;

pub use builder::StudyBuilder;
pub use isolate::{run_isolated, IsolateOptions};
pub use mps_store::Error;
pub use runner::{StudyCacheStats, StudyContext};
pub use scale::Scale;
pub use validate::{Baseline, FailOn, ValidateOptions, ValidationReport};

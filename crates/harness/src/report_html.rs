//! The self-contained HTML study dashboard.
//!
//! [`render_dashboard`] turns a slice of ledger [`RunRecord`]s into one
//! HTML page with zero external dependencies: styling is an inline
//! `<style>` block, every chart is inline SVG (run-over-run duration
//! trend, per-experiment duration bars, store hit-ratio sparkline,
//! cell-latency histogram) and the §VII convergence diagnostics appear as
//! a plain table. The output is a pure function of the records — no
//! timestamps, hostnames or RNG at render time — so the same ledger
//! produces a byte-identical page whatever machine or `--jobs` setting
//! renders it (the CLI's `report` command and CI both rely on that).

use mps_store::RunRecord;
use std::fmt::Write as _;

/// Chart geometry shared by the SVG helpers.
const CHART_W: f64 = 560.0;
const CHART_H: f64 = 120.0;
const PAD: f64 = 8.0;

/// Escapes text for an HTML body or attribute.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a chart coordinate with fixed precision (deterministic and
/// compact; SVG does not care about trailing zeros).
fn coord(v: f64) -> String {
    format!("{v:.1}")
}

/// An SVG polyline over `values`, scaled to the chart box. Returns an
/// empty string when there is nothing to plot.
fn sparkline(values: &[f64], stroke: &str) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let max = finite.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
    let min = finite.iter().copied().fold(f64::MAX, f64::min).min(0.0);
    let span = (max - min).max(1e-9);
    let n = values.len().max(2) - 1;
    let mut points = String::new();
    for (i, v) in values.iter().enumerate() {
        if !v.is_finite() {
            continue;
        }
        let x = PAD + (CHART_W - 2.0 * PAD) * i as f64 / n as f64;
        let y = CHART_H - PAD - (CHART_H - 2.0 * PAD) * (v - min) / span;
        let _ = write!(points, "{},{} ", coord(x), coord(y));
    }
    let mut svg = format!(
        "<svg viewBox=\"0 0 {CHART_W} {CHART_H}\" width=\"{CHART_W}\" height=\"{CHART_H}\" role=\"img\">"
    );
    let _ = write!(
        svg,
        "<polyline fill=\"none\" stroke=\"{stroke}\" stroke-width=\"2\" points=\"{}\"/>",
        points.trim_end()
    );
    // Mark the data points so single-run ledgers still show something.
    for (i, v) in values.iter().enumerate() {
        if !v.is_finite() {
            continue;
        }
        let x = PAD + (CHART_W - 2.0 * PAD) * i as f64 / n as f64;
        let y = CHART_H - PAD - (CHART_H - 2.0 * PAD) * (v - min) / span;
        let _ = write!(
            svg,
            "<circle cx=\"{}\" cy=\"{}\" r=\"2.5\" fill=\"{stroke}\"/>",
            coord(x),
            coord(y)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Horizontal labelled bars (label, value, display text), scaled to the
/// longest bar.
fn hbars(rows: &[(String, f64, String)], fill: &str) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let max = rows
        .iter()
        .map(|(_, v, _)| *v)
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let row_h = 18.0;
    let label_w = 170.0;
    let h = rows.len() as f64 * row_h + PAD;
    let mut svg = format!(
        "<svg viewBox=\"0 0 {CHART_W} {}\" width=\"{CHART_W}\" height=\"{}\" role=\"img\">",
        coord(h),
        coord(h)
    );
    for (i, (label, v, text)) in rows.iter().enumerate() {
        let y = i as f64 * row_h + 4.0;
        let w = (CHART_W - label_w - 80.0) * v / max;
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"{}\" font-size=\"11\" text-anchor=\"end\">{}</text>",
            coord(label_w - 6.0),
            coord(y + 10.0),
            esc(label)
        );
        let _ = write!(
            svg,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"12\" fill=\"{fill}\"/>",
            coord(label_w),
            coord(y),
            coord(w.max(0.5))
        );
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"{}\" font-size=\"11\">{}</text>",
            coord(label_w + w.max(0.5) + 6.0),
            coord(y + 10.0),
            esc(text)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// `exp.{name}.ms` fields of one record, in field order.
fn experiment_durations(rec: &RunRecord) -> Vec<(String, f64)> {
    rec.fields
        .iter()
        .filter_map(|(k, v)| {
            let name = k.strip_prefix("exp.")?.strip_suffix(".ms")?;
            Some((name.to_owned(), v.parse().ok()?))
        })
        .collect()
}

/// Distinct `conv.{estimator}.…` estimator names of one record.
fn convergence_names(rec: &RunRecord) -> Vec<String> {
    let mut names: Vec<String> = rec
        .fields
        .keys()
        .filter_map(|k| {
            let rest = k.strip_prefix("conv.")?;
            let (name, _leaf) = rest.rsplit_once('.')?;
            Some(name.to_owned())
        })
        .collect();
    names.dedup();
    names
}

/// Parses the sparse `i:count,i:count` histogram field.
fn parse_hist(field: &str) -> Vec<(usize, u64)> {
    field
        .split(',')
        .filter_map(|pair| {
            let (i, c) = pair.split_once(':')?;
            Some((i.parse().ok()?, c.parse().ok()?))
        })
        .collect()
}

/// Renders the dashboard for the given ledger records (oldest first).
///
/// Deterministic: the output is byte-identical for identical records.
pub fn render_dashboard(records: &[RunRecord]) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str(
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>mps study dashboard</title>\n<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:640px;color:#1a1a2e}\n\
         h1{font-size:1.4rem} h2{font-size:1.1rem;margin-top:2rem;border-bottom:1px solid #ddd}\n\
         table{border-collapse:collapse;width:100%} td,th{padding:2px 8px;text-align:right;\
         border-bottom:1px solid #eee} th{background:#f6f6fa} td:first-child,th:first-child{text-align:left}\n\
         .meta{color:#555} svg{display:block;margin:.5rem 0}\n\
         </style></head><body>\n<h1>mps study dashboard</h1>\n",
    );

    if records.is_empty() {
        out.push_str("<p class=\"meta\">The ledger is empty: no completed runs recorded yet.</p>\n</body></html>\n");
        return out;
    }

    let latest = records.last().expect("non-empty");
    let _ = writeln!(
        out,
        "<p class=\"meta\">{} run(s) in the ledger. Latest: scale <code>{}</code>, \
         {} jobs, config <code>{}</code>, kernel rev {}, schema {}.</p>",
        records.len(),
        esc(latest.get("scale").unwrap_or("?")),
        esc(latest.get("jobs").unwrap_or("?")),
        esc(latest.get("config_hash").unwrap_or("?")),
        esc(latest.get("kernel_rev").unwrap_or("?")),
        esc(latest.get("schema").unwrap_or("?")),
    );

    // Run-over-run wall-clock trend.
    out.push_str("<h2>Run duration trend</h2>\n");
    let walls: Vec<f64> = records
        .iter()
        .map(|r| r.f64("wall_ms").unwrap_or(f64::NAN) / 1000.0)
        .collect();
    let finite_walls: Vec<f64> = walls.iter().copied().filter(|v| v.is_finite()).collect();
    if finite_walls.is_empty() {
        out.push_str("<p class=\"meta\">No wall-clock data recorded.</p>\n");
    } else {
        let last = finite_walls.last().expect("non-empty");
        let _ = writeln!(
            out,
            "<p class=\"meta\">Total wall seconds per run, oldest → newest (latest {last:.1} s).</p>"
        );
        out.push_str(&sparkline(&walls, "#3b5bdb"));
        out.push('\n');
    }

    // Per-experiment durations of the latest run.
    out.push_str("<h2>Latest run: per-experiment duration</h2>\n");
    let mut durs = experiment_durations(latest);
    durs.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    if durs.is_empty() {
        out.push_str("<p class=\"meta\">No per-experiment durations recorded.</p>\n");
    } else {
        let rows: Vec<(String, f64, String)> = durs
            .iter()
            .map(|(n, ms)| (n.clone(), *ms, format!("{:.1} s", ms / 1000.0)))
            .collect();
        out.push_str(&hbars(&rows, "#5f3dc4"));
        out.push('\n');
    }

    // Store hit ratio across runs.
    out.push_str("<h2>Store hit ratio</h2>\n");
    let ratios: Vec<f64> = records
        .iter()
        .map(|r| r.f64("store.hit_ratio").unwrap_or(f64::NAN))
        .collect();
    if ratios.iter().any(|v| v.is_finite()) {
        let latest_ratio = ratios
            .iter()
            .rev()
            .find(|v| v.is_finite())
            .copied()
            .unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "<p class=\"meta\">Artifact-store hit ratio per run (latest {latest_ratio:.3}; \
             1.0 means every expensive artifact was reused).</p>"
        );
        out.push_str(&sparkline(&ratios, "#2b8a3e"));
        out.push('\n');
    } else {
        out.push_str(
            "<p class=\"meta\">No store statistics recorded (runs without --store).</p>\n",
        );
    }

    // Convergence diagnostics of the latest run.
    out.push_str("<h2>Latest run: convergence diagnostics (&sect;VII)</h2>\n");
    let conv = convergence_names(latest);
    if conv.is_empty() {
        out.push_str("<p class=\"meta\">No convergence estimators recorded.</p>\n");
    } else {
        out.push_str(
            "<p class=\"meta\">Per estimator: observations n, running cv of d(w), the required \
             random-sample size W = 8&middot;cv&sup2; and the confidence reached at n.</p>\n\
             <table><tr><th>estimator</th><th>n</th><th>cv</th><th>required W</th><th>confidence</th></tr>\n",
        );
        for name in &conv {
            let get = |leaf: &str| latest.get(&format!("conv.{name}.{leaf}"));
            let fmt_f = |v: Option<&str>, prec: usize| {
                v.and_then(|s| s.parse::<f64>().ok())
                    .map_or_else(|| "-".to_owned(), |x| format!("{x:.prec$}"))
            };
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                esc(name),
                esc(get("n").unwrap_or("-")),
                fmt_f(get("cv"), 3),
                esc(get("required_w").unwrap_or("-")),
                fmt_f(get("confidence"), 4),
            );
        }
        out.push_str("</table>\n");
    }

    // Cell-latency histogram of the latest run.
    out.push_str("<h2>Latest run: grid-cell latency</h2>\n");
    let hist = latest
        .get("hist.grid.cell.latency_us")
        .map(parse_hist)
        .unwrap_or_default();
    if hist.is_empty() {
        out.push_str("<p class=\"meta\">No cell-latency histogram recorded.</p>\n");
    } else {
        out.push_str(
            "<p class=\"meta\">Cells per power-of-two latency bucket (&micro;s upper bound).</p>\n",
        );
        let rows: Vec<(String, f64, String)> = hist
            .iter()
            .map(|&(i, c)| {
                (
                    format!("<= {} us", mps_obs::hist::bucket_upper_bound(i)),
                    c as f64,
                    c.to_string(),
                )
            })
            .collect();
        out.push_str(&hbars(&rows, "#e8590c"));
        out.push('\n');
    }

    // Run history table.
    out.push_str("<h2>Run history</h2>\n<table><tr><th>#</th><th>scale</th><th>jobs</th><th>experiments</th><th>wall s</th><th>hit ratio</th><th>failures</th></tr>\n");
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            i + 1,
            esc(r.get("scale").unwrap_or("-")),
            esc(r.get("jobs").unwrap_or("-")),
            esc(r.get("experiments").unwrap_or("-")),
            r.f64("wall_ms")
                .map_or_else(|| "-".to_owned(), |ms| format!("{:.1}", ms / 1000.0)),
            r.f64("store.hit_ratio")
                .map_or_else(|| "-".to_owned(), |v| format!("{v:.3}")),
            esc(r.get("failures").unwrap_or("0")),
        );
    }
    out.push_str("</table>\n</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(wall_ms: u64, hit_ratio: f64) -> RunRecord {
        let mut r = RunRecord::new();
        r.set("scale", "tl=1000,seed=42");
        r.set("jobs", "4");
        r.set("config_hash", "00deadbeef00");
        r.set("kernel_rev", "3");
        r.set("schema", "2");
        r.set("experiments", "fig3,fig6");
        r.set("failures", "0");
        r.set("wall_ms", wall_ms.to_string());
        r.set("exp.fig3.ms", (wall_ms / 2).to_string());
        r.set("exp.fig6.ms", (wall_ms / 3).to_string());
        r.set("store.hit_ratio", format!("{hit_ratio}"));
        r.set("conv.convergence.fig3.c2.n", "28");
        r.set("conv.convergence.fig3.c2.cv", "0.4");
        r.set("conv.convergence.fig3.c2.required_w", "2");
        r.set("conv.convergence.fig3.c2.confidence", "0.9999997133484281");
        r.set("hist.grid.cell.latency_us", "3:5,7:12,9:1");
        r
    }

    #[test]
    fn empty_ledger_renders_a_valid_page() {
        let html = render_dashboard(&[]);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("ledger is empty"));
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn dashboard_contains_all_sections_and_svgs() {
        let records = vec![sample_record(9000, 0.2), sample_record(5000, 0.9)];
        let html = render_dashboard(&records);
        assert!(html.contains("<svg"), "charts are inline SVG");
        assert!(html.contains("Run duration trend"));
        assert!(html.contains("per-experiment duration"));
        assert!(html.contains("Store hit ratio"));
        assert!(html.contains("convergence.fig3.c2"));
        assert!(html.contains("0.400"), "cv formatted");
        assert!(html.contains("Run history"));
        assert!(
            !html.contains("<script"),
            "dependency-free: no scripts at all"
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let records = vec![sample_record(9000, 0.2), sample_record(5000, 0.9)];
        assert_eq!(
            render_dashboard(&records),
            render_dashboard(&records),
            "byte-identical across calls"
        );
    }

    #[test]
    fn record_text_is_escaped() {
        let mut r = sample_record(100, 1.0);
        r.set("scale", "<script>alert(1)</script>");
        let html = render_dashboard(&[r]);
        assert!(!html.contains("<script>alert"));
        assert!(html.contains("&lt;script&gt;"));
    }
}

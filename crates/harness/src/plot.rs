//! Minimal ASCII line charts for terminal renderings of the figures.
//!
//! Good enough to see curve shapes (crossovers, saturation) without
//! leaving the terminal; the CSV export feeds real plotting tools.

/// Renders an ASCII chart of several `(x, y)` series.
///
/// Each series gets a distinct glyph; points are plotted on a
/// `width × height` grid spanning the data range (y clamped to [0, 1]
/// when `unit_y` is set, which suits confidence curves). Returns an empty
/// string when there is nothing to plot.
pub fn line_chart(
    series: &[(String, Vec<(f64, f64)>)],
    width: usize,
    height: usize,
    unit_y: bool,
) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if points.is_empty() || width < 8 || height < 4 {
        return String::new();
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = if unit_y {
        (0.0, 1.0)
    } else {
        (f64::INFINITY, f64::NEG_INFINITY)
    };
    for &(x, y) in &points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        if !unit_y {
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if xmax <= xmin {
        xmax = xmin + 1.0;
    }
    if ymax <= ymin {
        ymax = ymin + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (s, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[s % GLYPHS.len()];
        for &(x, y) in pts {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y.clamp(ymin, ymax) - ymin) / (ymax - ymin) * (height - 1) as f64).round()
                as usize;
            let row = height - 1 - cy;
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{ymax:6.2} |")
        } else if r == height - 1 {
            format!("{ymin:6.2} |")
        } else {
            "       |".to_owned()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("       +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "        {:<w$}{:>8.0}\n",
        format!("{xmin:.0}"),
        xmax,
        w = width.saturating_sub(8)
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(s, (name, _))| format!("{} {}", GLYPHS[s % GLYPHS.len()], name))
        .collect();
    out.push_str(&format!("        legend: {}\n", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Vec<(f64, f64)> {
        (0..20).map(|i| (i as f64, (i as f64 / 19.0))).collect()
    }

    #[test]
    fn chart_renders_all_series_glyphs() {
        let series = vec![
            ("up".to_owned(), curve()),
            (
                "down".to_owned(),
                curve().iter().map(|&(x, y)| (x, 1.0 - y)).collect(),
            ),
        ];
        let chart = line_chart(&series, 40, 10, true);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("legend: * up   o down"));
        // Every data row is framed by the axis.
        assert!(chart.lines().filter(|l| l.contains('|')).count() == 10);
    }

    #[test]
    fn empty_series_render_nothing() {
        assert_eq!(line_chart(&[], 40, 10, true), "");
        assert_eq!(line_chart(&[("e".to_owned(), vec![])], 40, 10, true), "");
    }

    #[test]
    fn unit_y_clamps_axis() {
        let series = vec![("c".to_owned(), vec![(0.0, 0.5), (1.0, 0.9)])];
        let chart = line_chart(&series, 30, 8, true);
        assert!(chart.contains("  1.00 |"));
        assert!(chart.contains("  0.00 |"));
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let series = vec![("p".to_owned(), vec![(3.0, 0.5)])];
        let chart = line_chart(&series, 20, 6, false);
        assert!(!chart.is_empty());
    }
}

//! Energy comparison of the LLC policies (the §VII motivation).
//!
//! The paper keeps detailed simulation in the loop because it yields what
//! the approximate simulator cannot — e.g. power, "to find if the extra
//! hardware complexity is worth the performance gain". This experiment
//! answers exactly that question for the case study: per policy, the
//! detailed simulator's event counters drive the energy model, reporting
//! energy per instruction next to performance.

use crate::runner::StudyContext;
use mps_sim_cpu::{energy_of_run, EnergyModel};
use mps_uncore::PolicyKind;

/// One policy's performance/energy summary.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// The LLC policy.
    pub policy: PolicyKind,
    /// Mean IPC across the sampled workloads' threads.
    pub mean_ipc: f64,
    /// Energy per instruction in picojoules.
    pub pj_per_instruction: f64,
    /// DRAM share of total energy.
    pub dram_share: f64,
}

/// The energy experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Workloads sampled.
    pub workloads: usize,
    /// One row per policy, paper order.
    pub rows: Vec<EnergyRow>,
}

impl std::fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ENERGY. Detailed-simulation energy per policy over {} random 2-core workloads.",
            self.workloads
        )?;
        writeln!(
            f,
            "{:<8} {:>10} {:>12} {:>12}",
            "policy", "mean IPC", "pJ/instr", "DRAM share"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>10.3} {:>12.1} {:>11.1}%",
                r.policy.to_string(),
                r.mean_ipc,
                r.pj_per_instruction,
                r.dram_share * 100.0
            )?;
        }
        Ok(())
    }
}

/// Runs the energy comparison on a small random 2-core workload sample.
pub fn energy(ctx: &StudyContext) -> Result<EnergyReport, mps_store::Error> {
    let cores = 2;
    let pop = ctx.population(cores)?;
    let mut rng = ctx.rng(0xE6E);
    let sample: Vec<_> = rng
        .sample_indices(pop.len(), ctx.scale.accuracy_workloads.min(pop.len()))
        .into_iter()
        .map(|i| pop.workloads()[i].clone())
        .collect();
    let model = EnergyModel::nominal();
    let rows: Result<Vec<EnergyRow>, mps_store::Error> = ctx
        .policies()
        .into_iter()
        .map(|policy| {
            let mut ipc_acc = 0.0;
            let mut ipc_n = 0usize;
            let mut pj_acc = 0.0;
            let mut dram_acc = 0.0;
            for w in &sample {
                let r = ctx.detailed_run(cores, policy, w)?;
                ipc_acc += r.ipc.iter().sum::<f64>();
                ipc_n += r.ipc.len();
                let e = energy_of_run(&model, &r);
                pj_acc += e.pj_per_instruction(r.instructions);
                dram_acc += e.dram_nj / e.total_nj();
            }
            Ok(EnergyRow {
                policy,
                mean_ipc: ipc_acc / ipc_n as f64,
                pj_per_instruction: pj_acc / sample.len() as f64,
                dram_share: dram_acc / sample.len() as f64,
            })
        })
        .collect();
    Ok(EnergyReport {
        workloads: sample.len(),
        rows: rows?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn energy_report_covers_all_policies() {
        let ctx = StudyContext::new(Scale::test());
        let rep = energy(&ctx).unwrap();
        assert_eq!(rep.rows.len(), 5);
        for r in &rep.rows {
            assert!(r.mean_ipc > 0.0, "{}", r.policy);
            assert!(r.pj_per_instruction > 0.0, "{}", r.policy);
            assert!((0.0..=1.0).contains(&r.dram_share), "{}", r.policy);
        }
        assert!(rep.to_string().contains("ENERGY"));
    }
}

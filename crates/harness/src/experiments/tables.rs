//! Tables I, II and IV.

use crate::runner::StudyContext;
use mps_sim_cpu::CoreConfig;
use mps_uncore::{PolicyKind, UncoreConfig};
use mps_workloads::MpkiClass;
use std::fmt::Write as _;

/// Table I: the core configuration, rendered like the paper.
pub fn table1() -> String {
    let c = CoreConfig::ispass2013();
    let mut s = String::new();
    let _ = writeln!(s, "TABLE I. CORE CONFIGURATION.");
    let _ = writeln!(
        s,
        "decode/issue/commit      {}/{}/{}",
        c.decode_width, c.issue_width, c.commit_width
    );
    let _ = writeln!(
        s,
        "RS/LDQ/STQ/ROB           {}/{}/{}/{}",
        c.rs_entries, c.ldq_entries, c.stq_entries, c.rob_entries
    );
    let _ = writeln!(
        s,
        "IL1 cache                {} cycles, {} kB, {}-way, 64-byte line, LRU, next-line prefetcher",
        c.il1_latency,
        c.il1_size >> 10,
        c.il1_ways
    );
    let _ = writeln!(
        s,
        "ITLB                     {}-entry, {}-way, LRU, {} kB page",
        c.itlb_entries,
        c.itlb_ways,
        c.page_bytes >> 10
    );
    let _ = writeln!(
        s,
        "DL1 cache                {} cycles, {} kB, {}-way, 64-byte line, LRU, write-back, IP-stride + next-line prefetchers",
        c.dl1_latency,
        c.dl1_size >> 10,
        c.dl1_ways
    );
    let _ = writeln!(
        s,
        "DTLB                     {}-entry, {}-way, LRU, {} kB page",
        c.dtlb_entries,
        c.dtlb_ways,
        c.page_bytes >> 10
    );
    let _ = writeln!(
        s,
        "Branch predictor         TAGE (+ {}‑cycle redirect)",
        c.mispredict_penalty
    );
    s
}

/// Table II: the uncore configurations for 2, 4 and 8 cores.
pub fn table2() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "TABLE II. UNCORE CONFIGURATIONS.");
    let _ = writeln!(
        s,
        "{:<22} {:>10} {:>10} {:>10}",
        "", "2 cores", "4 cores", "8 cores"
    );
    let cfgs: Vec<UncoreConfig> = [2, 4, 8]
        .iter()
        .map(|&k| UncoreConfig::ispass2013(k, PolicyKind::Lru))
        .collect();
    let _ = writeln!(
        s,
        "{:<22} {:>10} {:>10} {:>10}",
        "LLC size",
        format!("{}MB", cfgs[0].llc_size >> 20),
        format!("{}MB", cfgs[1].llc_size >> 20),
        format!("{}MB", cfgs[2].llc_size >> 20),
    );
    let _ = writeln!(
        s,
        "{:<22} {:>10} {:>10} {:>10}",
        "LLC latency",
        format!("{}cyc", cfgs[0].llc_latency),
        format!("{}cyc", cfgs[1].llc_latency),
        format!("{}cyc", cfgs[2].llc_latency),
    );
    let c = &cfgs[0];
    let _ = writeln!(
        s,
        "LLC                    64-byte line, {}-way, write-back, {}-entry write buffer, {} MSHRs, stream prefetchers",
        c.llc_ways, c.write_buffer, c.mshrs
    );
    let _ = writeln!(
        s,
        "FSB                    {} core cycles per line   DRAM latency {} cycles",
        c.memory.fsb_cycles_per_line, c.memory.dram_latency
    );
    s
}

/// One row of the Table IV reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct MpkiRow {
    /// Benchmark name.
    pub name: String,
    /// Nominal class from the paper's Table IV.
    pub nominal: MpkiClass,
    /// Steady-state MPKI measured with the detailed simulator.
    pub measured_mpki: f64,
    /// Class of the measured MPKI.
    pub measured_class: MpkiClass,
}

/// The Table IV reproduction: measured MPKI classification of all 22
/// benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct MpkiReport {
    /// One row per benchmark, suite order.
    pub rows: Vec<MpkiRow>,
}

impl MpkiReport {
    /// Number of benchmarks whose measured class matches Table IV.
    pub fn matches(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.nominal == r.measured_class)
            .count()
    }
}

impl std::fmt::Display for MpkiReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "TABLE IV. CLASSIFICATION OF BENCHMARKS ACCORDING TO MEMORY INTENSITY."
        )?;
        writeln!(
            f,
            "{:<12} {:>8} {:>10} {:>8}  match",
            "benchmark", "nominal", "MPKI", "class"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>8} {:>10.2} {:>8}  {}",
                r.name,
                r.nominal.to_string(),
                r.measured_mpki,
                r.measured_class.to_string(),
                if r.nominal == r.measured_class {
                    "ok"
                } else {
                    "MISMATCH"
                }
            )?;
        }
        writeln!(
            f,
            "{} / {} classes match Table IV",
            self.matches(),
            self.rows.len()
        )
    }
}

/// Measures every benchmark's steady-state MPKI with the detailed
/// simulator, alone on the 2-core (1 MB LLC) reference uncore. The 22
/// single-benchmark simulations are independent, so they fan out over the
/// context's worker pool (rows stay in suite order).
pub fn table4(ctx: &StudyContext) -> Result<MpkiReport, mps_store::Error> {
    let space = mps_sampling::WorkloadSpace::new(22, 1);
    let rows = mps_par::par_map_range(ctx.jobs(), 22, |b| {
        let w = space.unrank(b as u128);
        let r = ctx
            .detailed_run(2, PolicyKind::Lru, &w)
            .expect("single-benchmark workloads from the suite are valid");
        let mpki = r.steady_mpki(0);
        let spec = &ctx.suite()[b];
        MpkiRow {
            name: spec.name().to_owned(),
            nominal: spec.nominal_class,
            measured_mpki: mpki,
            measured_class: MpkiClass::classify(mpki),
        }
    });
    Ok(MpkiReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn table1_mentions_table_i_values() {
        let t = table1();
        assert!(t.contains("4/6/4"));
        assert!(t.contains("36/36/24/128"));
        assert!(t.contains("TAGE"));
    }

    #[test]
    fn table2_mentions_llc_sizes() {
        let t = table2();
        assert!(t.contains("1MB"));
        assert!(t.contains("2MB"));
        assert!(t.contains("4MB"));
    }

    #[test]
    fn table4_report_renders() {
        // Tiny scale keeps this test fast; class agreement at full trace
        // lengths is checked by the ignored test below and the binary.
        let ctx = StudyContext::new(Scale::test());
        let rep = table4(&ctx).unwrap();
        assert_eq!(rep.rows.len(), 22);
        let text = rep.to_string();
        assert!(text.contains("mcf"));
        assert!(text.contains("TABLE IV"));
    }

    #[test]
    #[ignore = "slow: run with --ignored for the full calibration check"]
    fn table4_classes_match_at_default_scale() {
        let ctx = StudyContext::new(Scale::small());
        let rep = table4(&ctx).unwrap();
        assert!(
            rep.matches() >= 20,
            "at least 20/22 classes must match: got {}\n{rep}",
            rep.matches()
        );
    }
}

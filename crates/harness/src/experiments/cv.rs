//! Figures 4 and 5: the inverse coefficient of variation `1/cv`.
//!
//! `1/cv = µ/σ` of the per-workload difference `d(w)` is the paper's
//! effect-size summary: its sign says which policy of a pair wins, its
//! magnitude how few workloads are needed to see it. Figure 4 compares
//! three estimates (detailed 250-workload sample, BADCO on the same
//! sample, BADCO on the full population) for each pair under each metric;
//! Figure 5 shows the population values for all three metrics.

use crate::runner::StudyContext;
use mps_metrics::{pair_comparison, ThroughputMetric};
use mps_sampling::Workload;
use mps_uncore::PolicyKind;

/// `1/cv` estimates for one policy pair under one metric.
///
/// Orientation follows the paper's figure labels: the row for pair
/// "A>B" has positive `1/cv` when A outperforms B.
#[derive(Debug, Clone, PartialEq)]
pub struct InvCvRow {
    /// First-named policy (positive `1/cv` means it wins).
    pub x: PolicyKind,
    /// Second-named policy.
    pub y: PolicyKind,
    /// Metric.
    pub metric: ThroughputMetric,
    /// `1/cv` from the detailed simulator on the sample (None for Fig. 5).
    pub detailed_sample: Option<f64>,
    /// `1/cv` from BADCO on the same sample (None for Fig. 5).
    pub badco_sample: Option<f64>,
    /// `1/cv` from BADCO on the whole population.
    pub badco_population: f64,
}

/// The Figure 4/5 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct InvCvReport {
    /// Figure number (4 or 5), for rendering.
    pub figure: u8,
    /// One row per (pair, metric).
    pub rows: Vec<InvCvRow>,
}

impl InvCvReport {
    /// Looks a row up by pair and metric.
    pub fn row(&self, x: PolicyKind, y: PolicyKind, metric: ThroughputMetric) -> Option<&InvCvRow> {
        self.rows
            .iter()
            .find(|r| r.x == x && r.y == y && r.metric == metric)
    }

    /// Fraction of rows where the sample estimates agree in sign with the
    /// population estimate (qualitative accuracy of the approximations).
    pub fn sign_agreement(&self) -> f64 {
        let relevant: Vec<&InvCvRow> = self
            .rows
            .iter()
            .filter(|r| r.badco_sample.is_some())
            .collect();
        if relevant.is_empty() {
            return 1.0;
        }
        let agreeing = relevant
            .iter()
            .filter(|r| r.badco_sample.unwrap().signum() == r.badco_population.signum())
            .count();
        agreeing as f64 / relevant.len() as f64
    }
}

impl std::fmt::Display for InvCvReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.figure == 4 {
            writeln!(
                f,
                "FIGURE 4. 1/cv per policy pair and metric: detailed sample vs BADCO sample vs BADCO population."
            )?;
            writeln!(
                f,
                "{:<14} {:>6} {:>16} {:>14} {:>14}",
                "pair", "metric", "detailed-sample", "BADCO-sample", "BADCO-popul."
            )?;
        } else {
            writeln!(f, "FIGURE 5. 1/cv on the population for the 3 metrics.")?;
            writeln!(f, "{:<14} {:>6} {:>14}", "pair", "metric", "1/cv")?;
        }
        for r in &self.rows {
            let pair = format!("{}>{}", r.x, r.y);
            if self.figure == 4 {
                writeln!(
                    f,
                    "{:<14} {:>6} {:>16.3} {:>14.3} {:>14.3}",
                    pair,
                    r.metric.to_string(),
                    r.detailed_sample.unwrap_or(f64::NAN),
                    r.badco_sample.unwrap_or(f64::NAN),
                    r.badco_population
                )?;
            } else {
                writeln!(
                    f,
                    "{:<14} {:>6} {:>14.3}",
                    pair,
                    r.metric.to_string(),
                    r.badco_population
                )?;
            }
        }
        Ok(())
    }
}

/// Figure 4: `1/cv` for all 10 policy pairs × 3 metrics on 4 cores, from
/// the detailed sample, the BADCO sample, and the BADCO population.
pub fn fig4(ctx: &StudyContext) -> Result<InvCvReport, mps_store::Error> {
    let cores = 4;
    // The detailed sample: `detailed_sample` random workloads.
    let pop = ctx.population(cores)?;
    let mut rng = ctx.rng(0xF164);
    let sample_size = ctx.scale.detailed_sample.min(pop.len());
    let idx = rng.sample_indices(pop.len(), sample_size);
    let sample: Vec<Workload> = idx.iter().map(|&i| pop.workloads()[i].clone()).collect();

    // Detailed tables per policy over the sample.
    let mut detailed_t = std::collections::HashMap::new();
    for p in ctx.policies() {
        let table = ctx.detailed_table(cores, p, &sample)?;
        detailed_t.insert(p, table);
    }

    let mut rows = Vec::new();
    for (x, y) in ctx.policy_pairs() {
        for metric in ThroughputMetric::PAPER_METRICS {
            // Paper label orientation: positive favours the first-named
            // policy, so the first-named plays the role of "Y" in d(w).
            let det = pair_comparison(
                metric,
                &detailed_t[&y].throughputs(metric),
                &detailed_t[&x].throughputs(metric),
            )
            .inv_cv;
            let tx = ctx.badco_table(cores, y)?.throughputs(metric);
            let ty = ctx.badco_table(cores, x)?.throughputs(metric);
            let bad_sample = pair_comparison(
                metric,
                &idx.iter().map(|&i| tx[i]).collect::<Vec<_>>(),
                &idx.iter().map(|&i| ty[i]).collect::<Vec<_>>(),
            )
            .inv_cv;
            let bad_pop = pair_comparison(metric, &tx, &ty).inv_cv;
            rows.push(InvCvRow {
                x,
                y,
                metric,
                detailed_sample: Some(det),
                badco_sample: Some(bad_sample),
                badco_population: bad_pop,
            });
        }
    }
    Ok(InvCvReport { figure: 4, rows })
}

/// Figure 5: `1/cv` on the BADCO population for all pairs × metrics.
pub fn fig5(ctx: &StudyContext) -> Result<InvCvReport, mps_store::Error> {
    let cores = 4;
    let mut rows = Vec::new();
    for (x, y) in ctx.policy_pairs() {
        for metric in ThroughputMetric::PAPER_METRICS {
            let cmp = ctx.badco_pair_data(cores, y, x, metric)?.comparison();
            rows.push(InvCvRow {
                x,
                y,
                metric,
                detailed_sample: None,
                badco_sample: None,
                badco_population: cmp.inv_cv,
            });
        }
    }
    Ok(InvCvReport { figure: 5, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn fig5_covers_all_pairs_and_metrics() {
        let ctx = StudyContext::new(Scale::test());
        let rep = fig5(&ctx).unwrap();
        assert_eq!(rep.rows.len(), 30);
        assert!(rep.to_string().contains("FIGURE 5"));
        // Every value finite or infinite-with-sign, never NaN-printed rows
        // beyond genuinely equivalent pairs.
        let finite = rep
            .rows
            .iter()
            .filter(|r| r.badco_population.is_finite())
            .count();
        assert!(finite >= 20, "finite rows: {finite}");
    }

    #[test]
    fn fig5_rows_are_meaningful_at_test_scale() {
        // Direction checks need steady-state reuse, which the tiny test
        // scale cannot provide (see the ignored test below); here we only
        // require that policies genuinely differentiate.
        let ctx = StudyContext::new(Scale::test());
        let rep = fig5(&ctx).unwrap();
        let wsu = ThroughputMetric::WeightedSpeedup;
        let lru_rnd = rep
            .row(PolicyKind::Lru, PolicyKind::Random, wsu)
            .unwrap()
            .badco_population;
        assert!(lru_rnd.is_finite() && lru_rnd != 0.0, "1/cv = {lru_rnd}");
    }

    #[test]
    #[ignore = "slow: run with --ignored for the full shape check"]
    fn fig5_shape_matches_paper_at_default_scale() {
        // The paper's strongest findings: LRU clearly outperforms RANDOM
        // and FIFO, and DRRIP edges out DIP (positive value = first-named
        // policy wins).
        let ctx = StudyContext::new(Scale::small());
        let rep = fig5(&ctx).unwrap();
        for metric in ThroughputMetric::PAPER_METRICS {
            let v = rep
                .row(PolicyKind::Lru, PolicyKind::Random, metric)
                .unwrap()
                .badco_population;
            assert!(v > 0.0, "LRU must beat RANDOM under {metric}: {v}");
            let v = rep
                .row(PolicyKind::Lru, PolicyKind::Fifo, metric)
                .unwrap()
                .badco_population;
            assert!(v > 0.0, "LRU must beat FIFO under {metric}: {v}");
            let v = rep
                .row(PolicyKind::Dip, PolicyKind::Drrip, metric)
                .unwrap()
                .badco_population;
            assert!(v < 0.0, "DRRIP must beat DIP under {metric}: {v}");
        }
    }
}

//! Figures 1, 3, 6 and 7: degrees of confidence.

use crate::convergence::ConvergenceProbe;
use crate::runner::StudyContext;
use mps_metrics::ThroughputMetric;
use mps_sampling::{
    analytic_confidence, empirical_confidence_seeded, BalancedRandomSampling,
    BenchmarkStratification, PairData, RandomSampling, Sampler, WorkloadStratification,
};
use mps_store::{Checkpoint, Error};
use mps_uncore::PolicyKind;
use std::sync::Arc;

/// One checkpointable grid cell: draws the cell's RNG base (exactly one
/// `next_u64`, same as the pre-checkpoint code path, so resumed and
/// uninterrupted runs see identical streams), then either replays the
/// checkpointed value or evaluates and records it.
#[allow(clippy::too_many_arguments)]
fn checkpointed_confidence(
    ckpt: Option<&Arc<Checkpoint>>,
    cell: &str,
    sampler: &dyn Sampler,
    pop: &mps_sampling::Population,
    data: &PairData,
    w: usize,
    samples: usize,
    rng: &mut mps_stats::rng::Rng,
    jobs: usize,
) -> f64 {
    let base = rng.next_u64();
    if let Some(v) = ckpt.and_then(|c| c.lookup(cell)) {
        crate::heartbeat::cell_replayed();
        return v;
    }
    let started = std::time::Instant::now();
    let v = empirical_confidence_seeded(sampler, pop, data, w, samples, base, jobs);
    crate::heartbeat::cell_finished(started.elapsed());
    if let Some(c) = ckpt {
        c.record(cell, v);
    }
    v
}

/// Figure 1: the analytic confidence curve `½(1+erf(x))`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Report {
    /// `(abscissa, confidence)` points.
    pub points: Vec<(f64, f64)>,
}

impl std::fmt::Display for Fig1Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "FIGURE 1. Degree of confidence as a function of (1/cv)·sqrt(W/2)."
        )?;
        for (x, c) in &self.points {
            writeln!(f, "{x:>6.2} {c:>8.4}")?;
        }
        Ok(())
    }
}

/// Generates the Figure 1 curve over [-2, 2].
pub fn fig1() -> Fig1Report {
    let points = (-20..=20)
        .map(|i| {
            let x = i as f64 / 10.0;
            (x, 0.5 * (1.0 + mps_stats::erf(x)))
        })
        .collect();
    Fig1Report { points }
}

/// Figure 3: analytic model vs experimental confidence for random
/// sampling, one pair and metric (paper: DRRIP vs DIP, WSU).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Report {
    /// Core counts evaluated.
    pub cores: Vec<usize>,
    /// `(cores, sample size, analytic, empirical)` series.
    pub points: Vec<(usize, usize, f64, f64)>,
}

impl Fig3Report {
    /// Maximum |analytic − empirical| disagreement across all points.
    pub fn max_model_error(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, _, a, e)| (a - e).abs())
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for Fig3Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "FIGURE 3. Confidence that DRRIP outperforms DIP vs sample size (WSU): model vs experiment."
        )?;
        writeln!(
            f,
            "{:>6} {:>8} {:>10} {:>12}",
            "cores", "W", "model", "experiment"
        )?;
        for &(k, w, a, e) in &self.points {
            writeln!(f, "{k:>6} {w:>8} {a:>10.4} {e:>12.4}")?;
        }
        for &k in &self.cores {
            let series: Vec<(String, Vec<(f64, f64)>)> = vec![
                (
                    format!("{k}-cores-model"),
                    self.points
                        .iter()
                        .filter(|&&(c, _, _, _)| c == k)
                        .map(|&(_, w, a, _)| (w as f64, a))
                        .collect(),
                ),
                (
                    format!("{k}-cores-exp."),
                    self.points
                        .iter()
                        .filter(|&&(c, _, _, _)| c == k)
                        .map(|&(_, w, _, e)| (w as f64, e))
                        .collect(),
                ),
            ];
            write!(f, "{}", crate::plot::line_chart(&series, 56, 12, true))?;
        }
        writeln!(
            f,
            "max |model - experiment| = {:.4}",
            self.max_model_error()
        )
    }
}

/// Runs the Figure 3 validation: empirical random-sampling confidence vs
/// the equation (5) model, for DRRIP vs DIP under WSU. With a store
/// attached, every evaluated grid point lands in the `fig3` checkpoint
/// log, so a killed run resumed with `--resume` replays the completed
/// cells and continues bit-identically.
pub fn fig3(ctx: &StudyContext) -> Result<Fig3Report, Error> {
    let metric = ThroughputMetric::WeightedSpeedup;
    // The paper validates on 2, 4 and 8 cores; the 8-core population is
    // included once the scale gives it a meaningful sample.
    let cores_list = if ctx.scale.pop_8core >= 100 {
        vec![2usize, 4, 8]
    } else {
        vec![2usize, 4]
    };
    let ckpt = ctx.grid_checkpoint("fig3");
    crate::heartbeat::grid_add_total((cores_list.len() * ctx.scale.sample_sizes.len()) as u64);
    let mut points = Vec::new();
    for &cores in &cores_list {
        let data = ctx.badco_pair_data(cores, PolicyKind::Dip, PolicyKind::Drrip, metric)?;
        let pop = ctx.population(cores)?;
        let probe = ConvergenceProbe::new("fig3", &format!("c{cores}"), &data.differences());
        let mut rng = ctx.rng(0xF163 ^ cores as u64);
        for &w in &ctx.scale.sample_sizes.clone() {
            let analytic = analytic_confidence(&data, w);
            let empirical = checkpointed_confidence(
                ckpt.as_ref(),
                &format!("c{cores};w{w}"),
                &RandomSampling,
                &pop,
                &data,
                w,
                ctx.scale.confidence_samples,
                &mut rng,
                ctx.jobs(),
            );
            probe.cell("random", w, ctx.scale.confidence_samples);
            points.push((cores, w, analytic, empirical));
        }
    }
    Ok(Fig3Report {
        cores: cores_list,
        points,
    })
}

/// Confidence-vs-sample-size curves for several sampling methods on one
/// policy pair (one panel of Figure 6 / Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidencePanel {
    /// Baseline policy X.
    pub x: PolicyKind,
    /// Contender policy Y.
    pub y: PolicyKind,
    /// `(method name, sample size, confidence)` series.
    pub series: Vec<(String, usize, f64)>,
}

impl ConfidencePanel {
    /// Confidence of a method at a sample size, if evaluated.
    pub fn confidence(&self, method: &str, w: usize) -> Option<f64> {
        self.series
            .iter()
            .find(|(m, sw, _)| m == method && *sw == w)
            .map(|&(_, _, c)| c)
    }

    /// Method names present.
    pub fn methods(&self) -> Vec<String> {
        let mut ms: Vec<String> = self.series.iter().map(|(m, _, _)| m.clone()).collect();
        ms.dedup();
        ms
    }
}

/// The Figure 6 / Figure 7 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceCurves {
    /// Figure number (6 or 7), for rendering.
    pub figure: u8,
    /// Core count evaluated.
    pub cores: usize,
    /// Which simulator produced the throughputs ("BADCO" or "detailed").
    pub simulator: &'static str,
    /// One panel per policy pair.
    pub panels: Vec<ConfidencePanel>,
}

impl std::fmt::Display for ConfidenceCurves {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "FIGURE {}. Degree of confidence vs sample size ({} cores, measured with {}, IPCT).",
            self.figure, self.cores, self.simulator
        )?;
        for panel in &self.panels {
            writeln!(f, "--- {} > {} ---", panel.y, panel.x)?;
            let methods = panel.methods();
            write!(f, "{:>6}", "W")?;
            for m in &methods {
                write!(f, "{m:>18}")?;
            }
            writeln!(f)?;
            let mut sizes: Vec<usize> = panel.series.iter().map(|&(_, w, _)| w).collect();
            sizes.sort_unstable();
            sizes.dedup();
            for w in &sizes {
                write!(f, "{w:>6}")?;
                for m in &methods {
                    match panel.confidence(m, *w) {
                        Some(c) => write!(f, "{c:>18.3}")?,
                        None => write!(f, "{:>18}", "-")?,
                    }
                }
                writeln!(f)?;
            }
            let series: Vec<(String, Vec<(f64, f64)>)> = methods
                .iter()
                .map(|m| {
                    (
                        m.clone(),
                        sizes
                            .iter()
                            .filter_map(|&w| panel.confidence(m, w).map(|c| (w as f64, c)))
                            .collect(),
                    )
                })
                .collect();
            write!(f, "{}", crate::plot::line_chart(&series, 56, 12, true))?;
        }
        Ok(())
    }
}

/// The four policy pairs of Figure 6, oriented as in the paper
/// (`Y > X`): DIP>LRU, DRRIP>LRU, DRRIP>DIP, FIFO>RND.
pub fn fig6_pairs() -> [(PolicyKind, PolicyKind); 4] {
    [
        (PolicyKind::Lru, PolicyKind::Dip),
        (PolicyKind::Lru, PolicyKind::Drrip),
        (PolicyKind::Dip, PolicyKind::Drrip),
        (PolicyKind::Random, PolicyKind::Fifo),
    ]
}

/// Evaluates all applicable sampling methods on `data` over the given
/// population, producing one panel.
#[allow(clippy::too_many_arguments)]
fn panel(
    ctx: &StudyContext,
    ckpt: Option<&Arc<Checkpoint>>,
    experiment: &'static str,
    cell_prefix: &str,
    pop: &mps_sampling::Population,
    data: &PairData,
    x: PolicyKind,
    y: PolicyKind,
    samples: usize,
    stream: u64,
) -> ConfidencePanel {
    let mut series = Vec::new();
    let probe = ConvergenceProbe::new(experiment, cell_prefix, &data.differences());
    let classes: Vec<usize> = ctx
        .suite()
        .iter()
        .map(|b| b.nominal_class.index())
        .collect();
    let bench_strata = BenchmarkStratification::new(classes);
    let workload_strata = WorkloadStratification::with_defaults(&data.differences());
    let mut methods: Vec<(&str, &dyn Sampler)> = vec![
        ("random", &RandomSampling),
        ("bench-strata", &bench_strata),
        ("workload-strata", &workload_strata),
    ];
    let balanced = BalancedRandomSampling;
    if pop.is_full() {
        // The balanced construction needs the full population (paper
        // footnote 6 hits the same restriction).
        methods.insert(1, ("bal-random", &balanced));
    }
    let sizes = ctx.scale.sample_sizes.clone();
    let eligible = sizes.iter().filter(|&&w| w <= pop.len()).count();
    crate::heartbeat::grid_add_total((methods.len() * eligible) as u64);
    for (name, method) in methods {
        let mut rng = ctx.rng(stream ^ fxhash(name));
        for &w in &sizes {
            if w > pop.len() {
                continue;
            }
            let c = checkpointed_confidence(
                ckpt,
                &format!("{cell_prefix};{name};w{w}"),
                method,
                pop,
                data,
                w,
                samples,
                &mut rng,
                ctx.jobs(),
            );
            probe.cell(name, w, samples);
            series.push((name.to_owned(), w, c));
        }
    }
    ConfidencePanel { x, y, series }
}

fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

/// Figure 6: confidence of the four sampling methods on four policy
/// pairs, estimated with BADCO (4 cores, IPCT).
pub fn fig6(ctx: &StudyContext) -> Result<ConfidenceCurves, Error> {
    let cores = 4;
    let metric = ThroughputMetric::IpcThroughput;
    let pop = ctx.population(cores)?;
    let samples = ctx.scale.confidence_samples;
    let ckpt = ctx.grid_checkpoint("fig6");
    let mut panels = Vec::new();
    for (i, (x, y)) in fig6_pairs().into_iter().enumerate() {
        let data = ctx.badco_pair_data(cores, x, y, metric)?;
        panels.push(panel(
            ctx,
            ckpt.as_ref(),
            "fig6",
            &format!("p{i}"),
            &pop,
            &data,
            x,
            y,
            samples,
            0xF166 + i as u64,
        ));
    }
    Ok(ConfidenceCurves {
        figure: 6,
        cores,
        simulator: "BADCO",
        panels,
    })
}

/// Figure 7: the *actual* degree of confidence, measured with the detailed
/// simulator on the full 2-core population, for DIP vs LRU (IPCT) — with
/// workload strata still built from the BADCO data, exactly like the
/// paper (strata from the approximate simulator, outcomes from the
/// detailed one).
pub fn fig7(ctx: &StudyContext) -> Result<ConfidenceCurves, Error> {
    let cores = 2;
    let metric = ThroughputMetric::IpcThroughput;
    let pop = ctx.population(cores)?;
    let workloads = pop.workloads().to_vec();
    let (x, y) = (PolicyKind::Lru, PolicyKind::Dip);

    // Detailed-simulator throughputs over the full 253-workload population.
    let tx = ctx
        .detailed_table(cores, x, &workloads)?
        .throughputs(metric);
    let ty = ctx
        .detailed_table(cores, y, &workloads)?
        .throughputs(metric);
    let detailed_data = PairData::new(metric, tx, ty);

    // Strata are defined from the approximate (BADCO) differences.
    let badco_data = ctx.badco_pair_data(cores, x, y, metric)?;
    let workload_strata = WorkloadStratification::with_defaults(&badco_data.differences());

    let classes: Vec<usize> = ctx
        .suite()
        .iter()
        .map(|b| b.nominal_class.index())
        .collect();
    let bench_strata = BenchmarkStratification::new(classes);
    let balanced = BalancedRandomSampling;
    let methods: Vec<(&str, &dyn Sampler)> = vec![
        ("random", &RandomSampling),
        ("bal-random", &balanced),
        ("bench-strata", &bench_strata),
        ("workload-strata", &workload_strata),
    ];

    // The paper uses 100 samples per size for this figure.
    let samples = (ctx.scale.confidence_samples / 10).max(100);
    let sizes: Vec<usize> = ctx
        .scale
        .sample_sizes
        .iter()
        .copied()
        .filter(|&w| w <= 50)
        .collect();
    let ckpt = ctx.grid_checkpoint("fig7");
    crate::heartbeat::grid_add_total((methods.len() * sizes.len()) as u64);
    let probe = ConvergenceProbe::new("fig7", "p0", &detailed_data.differences());
    let mut series = Vec::new();
    for (name, method) in methods {
        let mut rng = ctx.rng(0xF167 ^ fxhash(name));
        for &w in &sizes {
            let c = checkpointed_confidence(
                ckpt.as_ref(),
                &format!("{name};w{w}"),
                method,
                &pop,
                &detailed_data,
                w,
                samples,
                &mut rng,
                ctx.jobs(),
            );
            probe.cell(name, w, samples);
            series.push((name.to_owned(), w, c));
        }
    }
    Ok(ConfidenceCurves {
        figure: 7,
        cores,
        simulator: "detailed",
        panels: vec![ConfidencePanel { x, y, series }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn fig1_curve_shape() {
        let rep = fig1();
        assert_eq!(rep.points.len(), 41);
        assert!(rep.points.first().unwrap().1 < 0.01);
        assert!((rep.points[20].1 - 0.5).abs() < 1e-12);
        assert!(rep.points.last().unwrap().1 > 0.99);
        assert!(rep.to_string().contains("FIGURE 1"));
    }

    #[test]
    fn fig3_model_tracks_experiment() {
        let ctx = StudyContext::new(Scale::test());
        let rep = fig3(&ctx).unwrap();
        assert!(!rep.points.is_empty());
        // The CLT model and the experiment must agree reasonably — this is
        // the paper's central validation (they report "quite good" match).
        // The CLT model is rough when W approaches the tiny test-scale
        // population; the small/full scales validate the tight match.
        assert!(
            rep.max_model_error() < 0.25,
            "model error {}",
            rep.max_model_error()
        );
    }

    #[test]
    fn fig6_panels_have_all_methods_on_full_populations() {
        let ctx = StudyContext::new(Scale::test());
        let rep = fig6(&ctx).unwrap();
        assert_eq!(rep.panels.len(), 4);
        for p in &rep.panels {
            let ms = p.methods();
            assert!(ms.contains(&"random".to_owned()));
            assert!(ms.contains(&"workload-strata".to_owned()));
        }
        assert!(rep.to_string().contains("FIGURE 6"));
    }
}

//! Table III (simulation speed) and Figure 2 (CPI accuracy).

use crate::runner::StudyContext;
use mps_store::Error;
use mps_uncore::PolicyKind;
use std::fmt::Write as _;

/// Simulation speeds for one core count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedRow {
    /// Core count.
    pub cores: usize,
    /// Detailed-simulator speed in MIPS.
    pub detailed_mips: f64,
    /// BADCO speed in MIPS.
    pub badco_mips: f64,
}

impl SpeedRow {
    /// BADCO speedup over the detailed simulator.
    pub fn speedup(&self) -> f64 {
        self.badco_mips / self.detailed_mips
    }
}

/// The Table III reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedReport {
    /// One row per core count (1, 2, 4, 8).
    pub rows: Vec<SpeedRow>,
}

impl std::fmt::Display for SpeedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "TABLE III. BADCO AVERAGE SIMULATION SPEEDUP.")?;
        write!(f, "{:<18}", "Number of cores")?;
        for r in &self.rows {
            write!(f, "{:>10}", r.cores)?;
        }
        writeln!(f)?;
        write!(f, "{:<18}", "MIPS - detailed")?;
        for r in &self.rows {
            write!(f, "{:>10.3}", r.detailed_mips)?;
        }
        writeln!(f)?;
        write!(f, "{:<18}", "MIPS - BADCO")?;
        for r in &self.rows {
            write!(f, "{:>10.3}", r.badco_mips)?;
        }
        writeln!(f)?;
        write!(f, "{:<18}", "Speedup")?;
        for r in &self.rows {
            write!(f, "{:>10.1}", r.speedup())?;
        }
        writeln!(f)
    }
}

/// Measures both simulators' speed on 1-, 2-, 4- and 8-core workloads
/// (averaged over a few random workloads per core count).
pub fn table3(ctx: &StudyContext) -> Result<SpeedReport, Error> {
    let mut rows = Vec::new();
    for cores in [1usize, 2, 4, 8] {
        let uncore_cores = cores.max(2);
        let space = mps_sampling::WorkloadSpace::new(22, cores);
        let mut rng = ctx.rng(0x7AB1E3 ^ cores as u64);
        let reps = 3;
        let (mut det_i, mut det_t) = (0u64, 0.0f64);
        let (mut bad_i, mut bad_t) = (0u64, 0.0f64);
        for _ in 0..reps {
            let w = space.random_workload(&mut rng);
            let det = ctx.detailed_run(uncore_cores, PolicyKind::Lru, &w)?;
            det_i += det.instructions;
            det_t += det.wall_seconds;
            let models = ctx.models(uncore_cores)?;
            let bound: Vec<_> = w
                .benchmarks()
                .iter()
                .map(|&b| std::sync::Arc::clone(&models[b as usize]))
                .collect();
            let uncore = mps_uncore::Uncore::new(
                crate::runner::experiment_uncore(uncore_cores, PolicyKind::Lru),
                w.cores(),
            );
            let bad = mps_badco::BadcoMulticoreSim::new(uncore, bound).run();
            bad_i += bad.instructions;
            bad_t += bad.wall_seconds;
        }
        rows.push(SpeedRow {
            cores,
            detailed_mips: det_i as f64 / det_t / 1e6,
            badco_mips: bad_i as f64 / bad_t / 1e6,
        });
    }
    Ok(SpeedReport { rows })
}

/// One CPI comparison point (one thread of one workload).
#[derive(Debug, Clone, PartialEq)]
pub struct CpiPoint {
    /// Core count of the workload.
    pub cores: usize,
    /// Benchmark name of the thread.
    pub benchmark: String,
    /// CPI measured with the detailed simulator.
    pub detailed_cpi: f64,
    /// CPI predicted by BADCO.
    pub badco_cpi: f64,
}

impl CpiPoint {
    /// Signed relative error of the BADCO prediction.
    pub fn relative_error(&self) -> f64 {
        (self.badco_cpi - self.detailed_cpi) / self.detailed_cpi
    }
}

/// The Figure 2 reproduction: detailed vs BADCO CPI over random workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct CpiAccuracyReport {
    /// All comparison points.
    pub points: Vec<CpiPoint>,
}

impl CpiAccuracyReport {
    /// Mean absolute relative CPI error for one core count.
    pub fn mean_error(&self, cores: usize) -> f64 {
        let errs: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.cores == cores)
            .map(|p| p.relative_error().abs())
            .collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    /// Maximum absolute relative CPI error across all points.
    pub fn max_error(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.relative_error().abs())
            .fold(0.0, f64::max)
    }

    /// The core counts present.
    pub fn core_counts(&self) -> Vec<usize> {
        let mut ks: Vec<usize> = self.points.iter().map(|p| p.cores).collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    }
}

impl std::fmt::Display for CpiAccuracyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "FIGURE 2. Detailed CPI vs. BADCO CPI (scatter data).")?;
        writeln!(
            f,
            "{:>6} {:<12} {:>14} {:>12} {:>8}",
            "cores", "benchmark", "detailed CPI", "BADCO CPI", "err%"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>6} {:<12} {:>14.3} {:>12.3} {:>+8.1}",
                p.cores,
                p.benchmark,
                p.detailed_cpi,
                p.badco_cpi,
                p.relative_error() * 100.0
            )?;
        }
        let mut s = String::new();
        for k in self.core_counts() {
            let _ = write!(s, "{} cores: {:.2}%  ", k, self.mean_error(k) * 100.0);
        }
        writeln!(f, "average CPI error: {s}")?;
        writeln!(f, "maximum CPI error: {:.2}%", self.max_error() * 100.0)
    }
}

/// Runs `accuracy_workloads` random workloads per core count through both
/// simulators under LRU and compares per-thread CPIs (paper Figure 2).
pub fn fig2(ctx: &StudyContext) -> Result<CpiAccuracyReport, Error> {
    let mut points = Vec::new();
    let n_workloads = ctx.scale.accuracy_workloads;
    for cores in [2usize, 4] {
        let space = mps_sampling::WorkloadSpace::new(22, cores);
        let mut rng = ctx.rng(0xF162 ^ cores as u64);
        for _ in 0..n_workloads.div_ceil(2) {
            let w = space.random_workload(&mut rng);
            let det = ctx.detailed_run(cores, PolicyKind::Lru, &w)?;
            let bad = ctx.badco_run(cores, PolicyKind::Lru, &w)?;
            for (k, &b) in w.benchmarks().iter().enumerate() {
                points.push(CpiPoint {
                    cores,
                    benchmark: ctx.suite()[b as usize].name().to_owned(),
                    detailed_cpi: 1.0 / det.ipc[k],
                    badco_cpi: 1.0 / bad[k],
                });
            }
        }
    }
    Ok(CpiAccuracyReport { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn cpi_point_error_math() {
        let p = CpiPoint {
            cores: 2,
            benchmark: "x".into(),
            detailed_cpi: 2.0,
            badco_cpi: 2.2,
        };
        assert!((p.relative_error() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fig2_produces_points_for_both_core_counts() {
        let ctx = StudyContext::new(Scale::test());
        let rep = fig2(&ctx).unwrap();
        assert!(!rep.points.is_empty());
        assert_eq!(rep.core_counts(), vec![2, 4]);
        // Approximate-simulator sanity at tiny scale: CPIs correlate.
        assert!(rep.mean_error(2) < 1.0, "mean error {}", rep.mean_error(2));
        let text = rep.to_string();
        assert!(text.contains("FIGURE 2"));
    }

    #[test]
    fn table3_reports_positive_speeds() {
        let ctx = StudyContext::new(Scale::test());
        let rep = table3(&ctx).unwrap();
        assert_eq!(rep.rows.len(), 4);
        for r in &rep.rows {
            assert!(r.detailed_mips > 0.0);
            assert!(r.badco_mips > 0.0);
        }
        assert!(rep.to_string().contains("TABLE III"));
    }
}

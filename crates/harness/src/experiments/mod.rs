//! One module per group of paper artifacts.
//!
//! Every experiment takes a [`crate::StudyContext`] and returns a typed
//! report that implements `Display` in the shape of the paper's table or
//! figure (a text table with the same rows/series).

pub mod ablation;
pub mod accuracy;
pub mod confidence;
pub mod cv;
pub mod distribution;
pub mod energy;
pub mod guideline;
pub mod overhead;
pub mod profile;
pub mod tables;

pub use ablation::{ablation, AblationReport};
pub use accuracy::{fig2, table3, CpiAccuracyReport, SpeedReport};
pub use confidence::{fig1, fig3, fig6, fig7, ConfidenceCurves, Fig1Report, Fig3Report};
pub use cv::{fig4, fig5, InvCvReport};
pub use distribution::{dw, DistributionReport};
pub use energy::{energy, EnergyReport};
pub use guideline::{guideline, GuidelineReport};
pub use overhead::{overhead, OverheadReport};
pub use profile::{profile, ProfileReport};
pub use tables::{table1, table2, table4, MpkiReport};

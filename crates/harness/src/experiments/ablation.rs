//! Ablations of the design choices called out in `DESIGN.md`:
//!
//! * the workload-stratification cut parameters `T_SD` and `W_T`,
//! * proportional vs Neyman per-stratum allocation,
//! * the paper's four methods vs the cluster-analysis alternative from
//!   its related work.

use crate::runner::StudyContext;
use mps_metrics::ThroughputMetric;
use mps_sampling::{
    benchmark_classes_from_features, empirical_confidence_jobs, Allocation,
    BenchmarkStratification, ClusterSampling, RandomSampling, WorkloadStratification,
};
use mps_store::Error;
use mps_uncore::PolicyKind;
use mps_workloads::TraceProfile;

/// One ablation configuration and its measured confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Description of the configuration.
    pub config: String,
    /// Number of strata/clusters the configuration produced (0 = n/a).
    pub strata: usize,
    /// Empirical confidence at the probe sample size.
    pub confidence: f64,
}

/// The ablation report: one probe sample size, many configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationReport {
    /// Policy pair probed (Y vs X).
    pub pair: (PolicyKind, PolicyKind),
    /// Probe sample size.
    pub w: usize,
    /// Rows, in sweep order.
    pub rows: Vec<AblationRow>,
}

impl std::fmt::Display for AblationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ABLATION. {} > {} at W = {} (IPCT, 4 cores): stratification parameters and alternatives.",
            self.pair.1, self.pair.0, self.w
        )?;
        writeln!(
            f,
            "{:<44} {:>8} {:>12}",
            "configuration", "strata", "confidence"
        )?;
        for r in &self.rows {
            writeln!(f, "{:<44} {:>8} {:>12.3}", r.config, r.strata, r.confidence)?;
        }
        Ok(())
    }
}

/// Sweeps the stratification design space for one policy pair.
pub fn ablation(ctx: &StudyContext) -> Result<AblationReport, Error> {
    let cores = 4;
    let metric = ThroughputMetric::IpcThroughput;
    let (x, y) = (PolicyKind::Lru, PolicyKind::Drrip);
    let data = ctx.badco_pair_data(cores, x, y, metric)?;
    let pop = ctx.population(cores)?;
    let samples = ctx.scale.confidence_samples;
    let w = 30usize.min(pop.len());
    let d = data.differences();

    let mut rows = Vec::new();
    // Baseline: simple random sampling.
    {
        let mut rng = ctx.rng(0xAB0);
        rows.push(AblationRow {
            config: "random (baseline)".to_owned(),
            strata: 0,
            confidence: empirical_confidence_jobs(
                &RandomSampling,
                &pop,
                &data,
                w,
                samples,
                &mut rng,
                ctx.jobs(),
            ),
        });
    }
    // T_SD × W_T grid, proportional allocation.
    for tsd in [0.0005, 0.001, 0.005, 0.02] {
        for wt in [10usize, 25, 50] {
            let ws = WorkloadStratification::build(&d, tsd, wt);
            let mut rng = ctx.rng(0xAB1 ^ (wt as u64) << 8 ^ (tsd * 1e5) as u64);
            rows.push(AblationRow {
                config: format!("workload-strata T_SD={tsd} W_T={wt}"),
                strata: ws.num_strata(),
                confidence: empirical_confidence_jobs(
                    &ws,
                    &pop,
                    &data,
                    w,
                    samples,
                    &mut rng,
                    ctx.jobs(),
                ),
            });
        }
    }
    // Allocation rule ablation at the paper's defaults.
    for (name, alloc) in [
        ("proportional", Allocation::Proportional),
        ("Neyman", Allocation::Neyman),
    ] {
        let ws = WorkloadStratification::with_defaults(&d).with_allocation(alloc);
        let mut rng = ctx.rng(0xAB2 ^ name.len() as u64);
        rows.push(AblationRow {
            config: format!("workload-strata defaults / {name} allocation"),
            strata: ws.num_strata(),
            confidence: empirical_confidence_jobs(
                &ws,
                &pop,
                &data,
                w,
                samples,
                &mut rng,
                ctx.jobs(),
            ),
        });
    }
    // Cluster-analysis alternative (related work) at several k.
    for k in [4usize, 8, 16] {
        let mut rng = ctx.rng(0xAB3 ^ k as u64);
        let cs = ClusterSampling::from_scalar(&d, k, &mut rng);
        rows.push(AblationRow {
            config: format!("k-means clusters k={k}"),
            strata: cs.num_clusters(),
            confidence: empirical_confidence_jobs(
                &cs,
                &pop,
                &data,
                w,
                samples,
                &mut rng,
                ctx.jobs(),
            ),
        });
    }
    // Benchmark stratification with the manual Table IV classes vs
    // automatic classes clustered from microarchitecture-independent
    // trace profiles (Vandierendonck & Seznec's approach).
    {
        let manual: Vec<usize> = ctx
            .suite()
            .iter()
            .map(|b| b.nominal_class.index())
            .collect();
        let mut rng = ctx.rng(0xAB4);
        let strat = BenchmarkStratification::new(manual);
        rows.push(AblationRow {
            config: "bench-strata / manual MPKI classes".to_owned(),
            strata: strat.strata_of(&pop).len(),
            confidence: empirical_confidence_jobs(
                &strat,
                &pop,
                &data,
                w,
                samples,
                &mut rng,
                ctx.jobs(),
            ),
        });
        let features: Vec<Vec<f64>> = ctx
            .suite()
            .iter()
            .map(|b| {
                TraceProfile::analyze(&mut b.trace(), ctx.scale.trace_len.min(5_000)).features()
            })
            .collect();
        let auto = benchmark_classes_from_features(&features, 3, &mut rng);
        let strat = BenchmarkStratification::new(auto);
        rows.push(AblationRow {
            config: "bench-strata / k-means profile classes".to_owned(),
            strata: strat.strata_of(&pop).len(),
            confidence: empirical_confidence_jobs(
                &strat,
                &pop,
                &data,
                w,
                samples,
                &mut rng,
                ctx.jobs(),
            ),
        });
    }
    Ok(AblationReport {
        pair: (x, y),
        w,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn ablation_covers_the_design_space() {
        let ctx = StudyContext::new(Scale::test());
        let rep = ablation(&ctx).unwrap();
        assert_eq!(rep.rows.len(), 1 + 12 + 2 + 3 + 2);
        for r in &rep.rows {
            assert!((0.0..=1.0).contains(&r.confidence), "{}", r.config);
        }
        // Tighter T_SD never yields fewer strata at fixed W_T.
        let strata_of = |cfg: &str| {
            rep.rows
                .iter()
                .find(|r| r.config.contains(cfg))
                .map(|r| r.strata)
                .unwrap()
        };
        assert!(
            strata_of("T_SD=0.0005 W_T=10") >= strata_of("T_SD=0.02 W_T=10"),
            "tighter threshold, more strata"
        );
        assert!(rep.to_string().contains("ABLATION"));
    }
}

//! The §VII-A simulation-overhead example, with both the paper's numbers
//! and this reproduction's measured simulation speeds.

use crate::experiments::accuracy::SpeedReport;
use crate::runner::StudyContext;
use mps_sampling::OverheadModel;

/// The overhead comparison of §VII-A.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    /// The model evaluated with the paper's Zesto/BADCO speeds.
    pub paper: OverheadModel,
    /// The model evaluated with this reproduction's measured speeds.
    pub measured: OverheadModel,
}

impl OverheadReport {
    /// Formats a duration given in CPU-hours with a unit that keeps the
    /// value readable at any experiment scale.
    fn fmt_hours(h: f64) -> String {
        if h >= 0.1 {
            format!("{h:9.1} cpu*h")
        } else if h * 3600.0 >= 0.1 {
            format!("{:9.1} cpu*s", h * 3600.0)
        } else {
            format!("{:9.1} cpu*ms", h * 3_600_000.0)
        }
    }

    fn render_one(
        f: &mut std::fmt::Formatter<'_>,
        label: &str,
        m: &OverheadModel,
    ) -> std::fmt::Result {
        let base30 = m.detailed_hours(30, 2);
        let random120 = m.detailed_hours(120, 2);
        let strat_extra = m.model_building_hours() + m.approx_hours(800, 2);
        writeln!(f, "[{label}]")?;
        writeln!(
            f,
            "  30 detailed workloads x 2 policies        = {} (75% confidence, random)",
            Self::fmt_hours(base30)
        )?;
        writeln!(
            f,
            "  120 detailed workloads x 2 policies       = {} (90% confidence, random: +{:.0}% )",
            Self::fmt_hours(random120),
            (random120 / base30 - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "  model building + 800 approx workloads     = {}",
            Self::fmt_hours(strat_extra)
        )?;
        writeln!(
            f,
            "  30 detailed + stratification overhead     = {} (99% confidence: +{:.0}% )",
            Self::fmt_hours(base30 + strat_extra),
            strat_extra / base30 * 100.0
        )?;
        writeln!(
            f,
            "  stratification vs random extra-cost ratio = {:9.1}x cheaper",
            (random120 - base30) / strat_extra
        )
    }
}

impl std::fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "SECTION VII-A. Simulation overhead example (DIP vs LRU)."
        )?;
        Self::render_one(
            f,
            "paper speeds: Zesto 0.049 MIPS, BADCO 1.89 MIPS",
            &self.paper,
        )?;
        Self::render_one(f, "this reproduction's measured speeds", &self.measured)
    }
}

/// Builds the overhead report from measured Table III speeds.
pub fn overhead(ctx: &StudyContext, speeds: &SpeedReport) -> OverheadReport {
    let four = speeds
        .rows
        .iter()
        .find(|r| r.cores == 4)
        .expect("table3 measures 4 cores");
    let one = speeds
        .rows
        .iter()
        .find(|r| r.cores == 1)
        .expect("table3 measures 1 core");
    let measured = OverheadModel {
        benchmarks: ctx.suite().len(),
        cores: 4,
        instructions_per_thread: ctx.scale.trace_len as f64,
        detailed_mips: four.detailed_mips,
        detailed_single_core_mips: one.detailed_mips,
        approx_mips: four.badco_mips,
        traces_per_benchmark: 2,
    };
    OverheadReport {
        paper: OverheadModel::ispass2013_example(),
        measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::accuracy::table3;
    use crate::scale::Scale;

    #[test]
    fn overhead_report_reproduces_paper_numbers() {
        let ctx = StudyContext::new(Scale::test());
        let speeds = table3(&ctx).unwrap();
        let rep = overhead(&ctx, &speeds);
        let text = rep.to_string();
        assert!(text.contains("VII-A"));
        // The paper-speed section reproduces 136 and 544 cpu*hours.
        assert!((rep.paper.detailed_hours(30, 2) - 136.0).abs() < 1.0);
        assert!((rep.paper.detailed_hours(120, 2) - 544.0).abs() < 2.0);
    }
}

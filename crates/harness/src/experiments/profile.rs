//! Per-experiment profiling: a representative end-to-end pipeline with one
//! observability span per phase, plus the rendered report.
//!
//! `mps-harness profile` (or `--profile` after any experiment list) runs
//! each pipeline stage the study uses — trace synthesis, BADCO model
//! building, population enumeration, approximate (BADCO) and detailed
//! simulation, sampling and estimation — under a `phase.*` span, then
//! renders the global [`mps_obs::profile_report`] followed by the
//! [`StudyContext`] artifact-cache statistics. Every stage goes through
//! the same `StudyContext` entry points the real experiments use, so the
//! phase breakdown reflects where a study actually spends its time.

use crate::runner::StudyContext;
use mps_metrics::ThroughputMetric;
use mps_sampling::{
    analytic_confidence, empirical_confidence_jobs, PairData, RandomSampling,
    WorkloadStratification,
};
use mps_uncore::PolicyKind;
use mps_workloads::TraceSource;
use std::fmt;

/// Rendered profile: phase breakdown, counters, throughput, cache stats.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The `mps-obs` report body (spans, counters, simulation throughput).
    pub obs_report: String,
    /// Per-backend speed in million instructions per second, derived from
    /// the `sim.*.run` spans: `(badco_mips, detailed_mips)`.
    pub mips: (f64, f64),
    /// Context cache statistics at render time.
    pub cache: crate::runner::StudyCacheStats,
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.obs_report)?;
        writeln!(f, "\n-- simulator speed --")?;
        writeln!(f, "badco     {:>10.3} MIPS", self.mips.0)?;
        writeln!(f, "detailed  {:>10.3} MIPS", self.mips.1)?;
        writeln!(f, "\n-- study-context caches (hits / rebuilds) --")?;
        let c = &self.cache;
        writeln!(f, "models         {:>6} / {}", c.model_hits, c.model_misses)?;
        writeln!(
            f,
            "populations    {:>6} / {}",
            c.population_hits, c.population_misses
        )?;
        writeln!(f, "badco tables   {:>6} / {}", c.table_hits, c.table_misses)?;
        writeln!(
            f,
            "badco refs     {:>6} / {}",
            c.badco_ref_hits, c.badco_ref_misses
        )?;
        writeln!(
            f,
            "detailed refs  {:>6} / {}",
            c.detailed_ref_hits, c.detailed_ref_misses
        )?;
        Ok(())
    }
}

/// Instructions-per-second (in millions) attributed to one span name,
/// from its accumulated `*.instructions` counter delta and wall time.
fn span_mips(name: &str) -> f64 {
    for s in mps_obs::span_stats() {
        if s.name == name {
            let inst: u64 = s
                .deltas
                .iter()
                .filter(|(k, _)| k.ends_with(".instructions"))
                .map(|(_, v)| *v)
                .sum();
            let secs = s.total.as_secs_f64();
            if secs > 0.0 {
                return inst as f64 / secs / 1e6;
            }
        }
    }
    0.0
}

/// Runs the representative pipeline and renders the profile report.
///
/// The pipeline exercises both simulator backends on a two-core workload
/// pair, so the report's `sim.badco.*` and `sim.detailed.*` counters are
/// nonzero even when the preceding experiments only used one backend (or
/// none, like `table1`).
pub fn profile(ctx: &StudyContext) -> Result<ProfileReport, mps_store::Error> {
    let cores = 2;

    {
        // Trace synthesis on its own, outside any simulator: generate one
        // measurement slice per benchmark so the phase cost is visible.
        let _span = mps_obs::span("phase.trace_gen");
        let n = ctx.scale.trace_len;
        for spec in ctx.suite().to_vec() {
            let mut t = spec.trace();
            for _ in 0..n {
                std::hint::black_box(t.next_uop());
            }
        }
    }

    {
        let _span = mps_obs::span("phase.model_build");
        ctx.models(cores)?;
    }

    let pop = {
        let _span = mps_obs::span("phase.population");
        ctx.population(cores)?
    };

    // A deterministic pair of workloads from the population.
    let picks: Vec<_> = pop.workloads().iter().take(2).cloned().collect();

    {
        let _span = mps_obs::span("phase.sim.badco");
        for w in &picks {
            ctx.badco_run(cores, PolicyKind::Lru, w)?;
        }
    }

    {
        let _span = mps_obs::span("phase.sim.detailed");
        for w in &picks {
            ctx.detailed_run(cores, PolicyKind::Lru, w)?;
        }
    }

    let data = {
        let _span = mps_obs::span("phase.tables");
        let tx = ctx.badco_table(cores, PolicyKind::Lru)?;
        let ty = ctx.badco_table(cores, PolicyKind::Random)?;
        PairData::new(
            ThroughputMetric::WeightedSpeedup,
            tx.throughputs(ThroughputMetric::WeightedSpeedup),
            ty.throughputs(ThroughputMetric::WeightedSpeedup),
        )
    };

    let samples = ctx.scale.confidence_samples.min(200);
    let strat = {
        let _span = mps_obs::span("phase.sampling");
        WorkloadStratification::build(
            &data.differences(),
            WorkloadStratification::DEFAULT_SD_THRESHOLD,
            WorkloadStratification::DEFAULT_MIN_SIZE.min(pop.len().max(1)),
        )
    };

    {
        let _span = mps_obs::span("phase.estimation");
        let mut rng = ctx.rng(97);
        let _ = empirical_confidence_jobs(
            &RandomSampling,
            &pop,
            &data,
            10,
            samples,
            &mut rng,
            ctx.jobs(),
        );
        let _ = empirical_confidence_jobs(&strat, &pop, &data, 10, samples, &mut rng, ctx.jobs());
        let _ = analytic_confidence(&data, 10);
    }

    mps_obs::flush();
    Ok(ProfileReport {
        obs_report: mps_obs::profile_report(),
        mips: (span_mips("sim.badco.run"), span_mips("sim.detailed.run")),
        cache: ctx.cache_stats(),
    })
}

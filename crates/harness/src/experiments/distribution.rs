//! The `d(w)` distribution diagnostic (`mps-harness dw`).
//!
//! The whole methodology rides on the distribution of the per-workload
//! difference `d(w)`: its mean/σ ratio sets the random sample size
//! (equation (8)) and its shape is what workload stratification carves
//! up. This report shows the histogram for each Figure 6 pair, with the
//! stratum boundaries the default `T_SD`/`W_T` parameters would cut.

use crate::experiments::confidence::fig6_pairs;
use crate::runner::StudyContext;
use mps_metrics::ThroughputMetric;
use mps_sampling::WorkloadStratification;
use mps_stats::histogram::Histogram;
use mps_uncore::PolicyKind;

/// Distribution diagnostics for one policy pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionPanel {
    /// Baseline policy.
    pub x: PolicyKind,
    /// Contender policy.
    pub y: PolicyKind,
    /// The histogram of `d(w)` over the population.
    pub histogram: Histogram,
    /// Mean of `d(w)`.
    pub mean: f64,
    /// Population standard deviation of `d(w)`.
    pub std: f64,
    /// Strata the default parameters produce.
    pub strata: usize,
    /// Per-stratum sizes.
    pub strata_sizes: Vec<usize>,
}

/// The `dw` report.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionReport {
    /// One panel per Figure 6 pair.
    pub panels: Vec<DistributionPanel>,
}

impl std::fmt::Display for DistributionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "D(W) DISTRIBUTIONS (4 cores, IPCT): the raw material of stratification."
        )?;
        for p in &self.panels {
            writeln!(
                f,
                "--- {} > {}   mean = {:+.5}, sigma = {:.5}, |1/cv| = {:.3}, default strata = {} {:?} ---",
                p.y,
                p.x,
                p.mean,
                p.std,
                (p.mean / p.std).abs(),
                p.strata,
                p.strata_sizes
            )?;
            write!(f, "{}", p.histogram.render(48))?;
        }
        Ok(())
    }
}

/// Builds the `d(w)` histograms for the Figure 6 pairs.
pub fn dw(ctx: &StudyContext) -> Result<DistributionReport, mps_store::Error> {
    let cores = 4;
    let metric = ThroughputMetric::IpcThroughput;
    let panels: Result<Vec<DistributionPanel>, mps_store::Error> = fig6_pairs()
        .into_iter()
        .map(|(x, y)| {
            let data = ctx.badco_pair_data(cores, x, y, metric)?;
            let d = data.differences();
            let m: mps_stats::Moments = d.iter().collect();
            let ws = WorkloadStratification::with_defaults(&d);
            Ok(DistributionPanel {
                x,
                y,
                histogram: Histogram::of(&d, 16),
                mean: m.mean(),
                std: m.population_std(),
                strata: ws.num_strata(),
                strata_sizes: ws.sizes(),
            })
        })
        .collect();
    Ok(DistributionReport { panels: panels? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn dw_reports_all_pairs_with_consistent_totals() {
        let ctx = StudyContext::new(Scale::test());
        let rep = dw(&ctx).unwrap();
        assert_eq!(rep.panels.len(), 4);
        let pop = ctx.population(4).unwrap().len() as u64;
        for p in &rep.panels {
            assert_eq!(p.histogram.total(), pop);
            assert_eq!(p.strata_sizes.iter().sum::<usize>() as u64, pop);
            assert!(p.std >= 0.0);
        }
        let text = rep.to_string();
        assert!(text.contains("D(W) DISTRIBUTIONS"));
        assert!(text.contains('#'));
    }
}

//! The §VII practical guideline applied to every policy pair.
//!
//! For each of the 10 pairs the harness estimates `cv` from the BADCO
//! population under each metric and prints the decision the guideline
//! would hand a practitioner: declare equivalence, sample randomly with
//! `W = 8·cv²` workloads, or build workload strata.

use crate::convergence::ConvergenceProbe;
use crate::runner::StudyContext;
use mps_metrics::ThroughputMetric;
use mps_sampling::{recommend, Recommendation};
use mps_uncore::PolicyKind;

/// One guideline decision.
#[derive(Debug, Clone, PartialEq)]
pub struct GuidelineRow {
    /// First-named policy of the pair.
    pub x: PolicyKind,
    /// Second-named policy.
    pub y: PolicyKind,
    /// Metric the decision is for.
    pub metric: ThroughputMetric,
    /// Estimated |cv| on the population.
    pub cv: f64,
    /// The §VII recommendation.
    pub recommendation: Recommendation,
}

/// The guideline decision table.
#[derive(Debug, Clone, PartialEq)]
pub struct GuidelineReport {
    /// One row per (pair, metric).
    pub rows: Vec<GuidelineRow>,
}

impl GuidelineReport {
    /// Number of pairs falling in each regime (equivalent, random,
    /// stratify) under the given metric.
    pub fn regime_counts(&self, metric: ThroughputMetric) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for r in self.rows.iter().filter(|r| r.metric == metric) {
            match r.recommendation {
                Recommendation::Equivalent { .. } => counts.0 += 1,
                Recommendation::BalancedRandom { .. } => counts.1 += 1,
                Recommendation::WorkloadStratification { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

impl std::fmt::Display for GuidelineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "SECTION VII. Guideline decisions per policy pair (4 cores, BADCO population)."
        )?;
        writeln!(
            f,
            "{:<14} {:>6} {:>9}  recommendation",
            "pair", "metric", "cv"
        )?;
        for r in &self.rows {
            let decision = match r.recommendation {
                Recommendation::Equivalent { .. } => "declare equivalent".to_owned(),
                Recommendation::BalancedRandom { sample_size, .. } => {
                    format!("balanced random, W = {sample_size}")
                }
                Recommendation::WorkloadStratification {
                    random_equivalent, ..
                } => format!("workload strata (random would need W = {random_equivalent})"),
            };
            writeln!(
                f,
                "{:<14} {:>6} {:>9.2}  {}",
                format!("{} vs {}", r.y, r.x),
                r.metric.to_string(),
                r.cv,
                decision
            )?;
        }
        Ok(())
    }
}

/// Builds the guideline table over all pairs × paper metrics.
pub fn guideline(ctx: &StudyContext) -> Result<GuidelineReport, mps_store::Error> {
    let cores = 4;
    let mut rows = Vec::new();
    for (x, y) in ctx.policy_pairs() {
        for metric in ThroughputMetric::PAPER_METRICS {
            let data = ctx.badco_pair_data(cores, x, y, metric)?;
            let cv = data.comparison().cv.abs();
            let probe = ConvergenceProbe::new(
                "guideline",
                &format!("{y}-vs-{x}.{metric}"),
                &data.differences(),
            );
            let w = match recommend(cv) {
                Recommendation::BalancedRandom { sample_size, .. } => sample_size,
                Recommendation::WorkloadStratification {
                    random_equivalent, ..
                } => random_equivalent,
                Recommendation::Equivalent { .. } => 0,
            };
            probe.cell("population", w, 0);
            rows.push(GuidelineRow {
                x,
                y,
                metric,
                cv,
                recommendation: recommend(cv),
            });
        }
    }
    Ok(GuidelineReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn guideline_covers_all_pairs() {
        let ctx = StudyContext::new(Scale::test());
        let rep = guideline(&ctx).unwrap();
        assert_eq!(rep.rows.len(), 30);
        let (eq, rand, strat) = rep.regime_counts(ThroughputMetric::IpcThroughput);
        assert_eq!(eq + rand + strat, 10);
        // Recommendations must be self-consistent with the cv bands.
        for r in &rep.rows {
            match r.recommendation {
                Recommendation::Equivalent { .. } => {
                    assert!(r.cv > 10.0 || r.cv.is_nan(), "{r:?}")
                }
                Recommendation::BalancedRandom { .. } => assert!(r.cv < 2.0, "{r:?}"),
                Recommendation::WorkloadStratification { .. } => {
                    assert!((2.0..=10.0).contains(&r.cv), "{r:?}")
                }
            }
        }
        assert!(rep.to_string().contains("SECTION VII"));
    }
}

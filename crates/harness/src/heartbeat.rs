//! Periodic run progress: grid-cell accounting plus a background
//! heartbeat that reports it while a long study runs.
//!
//! The experiment grids (figures 3, 6, 7) call [`grid_add_total`] when
//! they learn how many cells a figure will evaluate, then
//! [`cell_finished`] / [`cell_replayed`] per cell. The accounting lives
//! in ordinary `mps-obs` gauges, counters and the
//! `grid.cell.latency_us` histogram, so it shows up in `/metrics` and
//! the profile report for free; with the `obs` feature off everything
//! here is inert.
//!
//! [`start`] spawns one detached thread that, every period:
//!
//! * appends a `heartbeat` event to the JSONL sink (fields: `cells_done`,
//!   `cells_total`, `replayed`, `eta_s`, `cv` — the last running
//!   coefficient of variation any convergence probe reported), and
//! * when stderr is a terminal, rewrites a single `\r`-anchored progress
//!   line (never a growing scroll; nothing at all when piped to a file).
//!
//! The ETA is `remaining cells × mean cell latency` from the
//! `grid.cell.latency_us` histogram — cells run sequentially at the grid
//! level (the worker pool parallelizes *inside* a cell), so no jobs
//! division is needed. It is absent until the first cell completes.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Duration;

/// Name of the per-cell latency histogram (shared with `/metrics`).
pub const CELL_LATENCY_HIST: &str = "grid.cell.latency_us";

/// Adds `n` cells to the run-wide expected total (figures call this as
/// soon as a grid's size is known; totals accumulate across figures).
pub fn grid_add_total(n: u64) {
    mps_obs::gauge("grid.cells.total").add(n as i64);
}

/// Marks one cell computed, recording its latency.
pub fn cell_finished(took: Duration) {
    mps_obs::histogram(CELL_LATENCY_HIST).record_duration(took);
    mps_obs::gauge("grid.cells.done").add(1);
}

/// Marks one cell replayed from a checkpoint (a `--resume` run): done,
/// but not counted into the latency histogram.
pub fn cell_replayed() {
    mps_obs::counter("grid.cells.replayed").incr();
    mps_obs::gauge("grid.cells.done").add(1);
}

/// One progress snapshot: `(done, total, replayed, eta_seconds)`.
fn snapshot() -> (i64, i64, u64, Option<f64>) {
    let done = mps_obs::gauge("grid.cells.done").get();
    let total = mps_obs::gauge("grid.cells.total").get();
    let replayed = mps_obs::counter("grid.cells.replayed").get();
    let eta = mps_obs::histograms_snapshot()
        .into_iter()
        .find(|h| h.name == CELL_LATENCY_HIST)
        .filter(|h| h.count() > 0 && total > done)
        .map(|h| (total - done) as f64 * h.approx_mean() / 1e6);
    (done, total, replayed, eta)
}

static STARTED: AtomicBool = AtomicBool::new(false);
static STOP: AtomicBool = AtomicBool::new(false);
/// Set once any `\r`-anchored TTY line has been written, so [`finish`]
/// knows whether a terminating newline is owed.
static WROTE_TTY: AtomicBool = AtomicBool::new(false);
static THREAD: Mutex<Option<JoinHandle<()>>> = Mutex::new(None);

/// Starts the heartbeat thread (idempotent; a no-op when instrumentation
/// is compiled out, since there would be nothing to report). [`finish`]
/// joins it at the end of the run; an abandoned thread still dies with
/// the process.
pub fn start(period: Duration) {
    if !mps_obs::enabled() || STARTED.swap(true, Ordering::SeqCst) {
        return;
    }
    STOP.store(false, Ordering::SeqCst);
    let handle = std::thread::Builder::new()
        .name("mps-heartbeat".to_owned())
        .spawn(move || loop {
            // Sleep in short slices so finish() never waits a full period
            // for the thread to notice the stop flag.
            let mut left = period;
            while !STOP.load(Ordering::SeqCst) && left > Duration::ZERO {
                let slice = left.min(Duration::from_millis(100));
                std::thread::sleep(slice);
                left = left.saturating_sub(slice);
            }
            if STOP.load(Ordering::SeqCst) {
                return;
            }
            beat();
        });
    if let Ok(h) = handle {
        *lock_thread() = Some(h);
    }
}

/// Stops the heartbeat thread and, when any `\r`-anchored progress line
/// was written, terminates it with a final summary and a newline so the
/// shell prompt does not land mid-line. Idempotent; a no-op when the
/// heartbeat never started (e.g. `MPS_HEARTBEAT_SECS=0`).
pub fn finish() {
    if !STARTED.load(Ordering::SeqCst) {
        return;
    }
    STOP.store(true, Ordering::SeqCst);
    if let Some(h) = lock_thread().take() {
        let _ = h.join();
    }
    STARTED.store(false, Ordering::SeqCst);
    if WROTE_TTY.swap(false, Ordering::SeqCst) {
        let (done, total, replayed, _) = snapshot();
        let _ = writeln!(
            std::io::stderr().lock(),
            "\rmps: {done}/{total} cells done, {replayed} replayed.                    "
        );
    }
}

fn lock_thread() -> std::sync::MutexGuard<'static, Option<JoinHandle<()>>> {
    match THREAD.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Emits one heartbeat now (the thread's body; separate for tests).
pub fn beat() {
    let (done, total, replayed, eta) = snapshot();
    if total == 0 {
        return; // nothing grid-shaped is running yet
    }
    let eta_s = eta.map_or_else(|| "-".to_owned(), |e| format!("{e:.0}"));
    let cv = mps_obs::gauge("convergence.cv_permille").get();
    let cv_s = if cv > 0 {
        format!("{:.2}", cv as f64 / 1000.0)
    } else {
        "-".to_owned()
    };
    mps_obs::event(
        "heartbeat",
        &[
            ("cells_done", done.to_string()),
            ("cells_total", total.to_string()),
            ("replayed", replayed.to_string()),
            ("eta_s", eta_s.clone()),
            ("cv", cv_s.clone()),
        ],
    );
    let err = std::io::stderr();
    if err.is_terminal() {
        // One rewritten line, not a scroll; trailing spaces wipe leftovers.
        let _ = write!(
            err.lock(),
            "\rmps: {done}/{total} cells done, {replayed} replayed, eta {eta_s}s, cv {cv_s}   "
        );
        WROTE_TTY.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_flows_into_obs() {
        if !mps_obs::enabled() {
            return; // inert without the feature: nothing to assert
        }
        mps_obs::reset();
        grid_add_total(10);
        cell_finished(Duration::from_micros(1500));
        cell_finished(Duration::from_micros(2500));
        cell_replayed();
        let (done, total, replayed, eta) = snapshot();
        assert_eq!(done, 3);
        assert_eq!(total, 10);
        assert_eq!(replayed, 1);
        let eta = eta.expect("two recorded latencies give an ETA");
        assert!(eta > 0.0, "eta {eta}");
        beat(); // exercises the event path; sinkless runs just aggregate
    }

    #[test]
    fn start_and_finish_join_cleanly() {
        // Valid in both feature configs: start() is inert without obs and
        // finish() must be a clean no-op either way.
        finish(); // never started: no-op
        start(Duration::from_secs(3600));
        start(Duration::from_secs(3600)); // idempotent
        finish(); // stops promptly despite the hour-long period
        finish(); // idempotent
        if mps_obs::enabled() {
            // A second start/finish cycle works after a join.
            start(Duration::from_secs(3600));
            finish();
        }
    }
}

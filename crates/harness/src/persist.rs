//! Artifact (de)serialization: domain types ⇄ store payload bytes.
//!
//! Every codec here is *exact*: floats travel as IEEE-754 bit patterns,
//! so an artifact loaded from the store is bit-identical to the one the
//! simulators computed — the property the kill-and-resume tests assert
//! end to end. Decoders never panic on malformed input; they return
//! [`Error::Corrupt`], which the store layer answers by quarantining the
//! file and recomputing.

use mps_badco::{BadcoModel, ModelNode, ModelRequest};
use mps_metrics::{PerfTable, WorkloadPerf};
use mps_sampling::{Population, Workload};
use mps_store::{Dec, Enc, Error, Result};
use mps_workloads::{TraceBuffer, TraceSource, Uop, UopKind};
use std::sync::Arc;

/// All µop kinds, indexed by their wire byte.
const UOP_KINDS: [UopKind; 9] = [
    UopKind::IntAlu,
    UopKind::IntMul,
    UopKind::IntDiv,
    UopKind::FpAdd,
    UopKind::FpMul,
    UopKind::FpDiv,
    UopKind::Load,
    UopKind::Store,
    UopKind::Branch,
];

fn kind_byte(k: UopKind) -> u8 {
    UOP_KINDS.iter().position(|&x| x == k).unwrap() as u8
}

fn byte_kind(b: u8, what: &str) -> Result<UopKind> {
    UOP_KINDS
        .get(b as usize)
        .copied()
        .ok_or_else(|| Error::Corrupt {
            path: what.to_owned(),
            detail: format!("invalid µop kind byte {b}"),
        })
}

/// Encodes a reference-IPC vector (or any plain `f64` table).
pub fn encode_f64s(vals: &[f64]) -> Vec<u8> {
    let mut e = Enc::new();
    e.f64s(vals);
    e.into_bytes()
}

/// Decodes [`encode_f64s`] output.
pub fn decode_f64s(bytes: &[u8]) -> Result<Vec<f64>> {
    let mut d = Dec::new(bytes, "f64-table");
    let v = d.f64s()?;
    d.finish()?;
    Ok(v)
}

/// Encodes a population table (space dimensions + rank-ordered workloads).
pub fn encode_population(pop: &Population) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(pop.space().benchmarks() as u32);
    e.u32(pop.space().cores() as u32);
    e.bool(pop.is_full());
    e.len(pop.len());
    for w in pop.workloads() {
        for &b in w.benchmarks() {
            e.u8(b as u8);
        }
    }
    e.into_bytes()
}

/// Decodes [`encode_population`] output.
pub fn decode_population(bytes: &[u8]) -> Result<Population> {
    let mut d = Dec::new(bytes, "population");
    let b = d.u32()? as usize;
    let k = d.u32()? as usize;
    let full = d.bool()?;
    let n = d.len(k.max(1))?;
    if n == 0 || k == 0 || b == 0 || b > u8::MAX as usize {
        return Err(Error::Corrupt {
            path: "population".to_owned(),
            detail: format!("implausible dimensions b={b} k={k} n={n}"),
        });
    }
    let mut workloads = Vec::with_capacity(n);
    for _ in 0..n {
        let mut benches = Vec::with_capacity(k);
        for _ in 0..k {
            let id = d.u8()?;
            if id as usize >= b {
                return Err(Error::Corrupt {
                    path: "population".to_owned(),
                    detail: format!("benchmark id {id} out of range (suite has {b})"),
                });
            }
            benches.push(u16::from(id));
        }
        workloads.push(Workload::new(benches));
    }
    d.finish()?;
    Ok(Population::from_parts(b, k, workloads, full))
}

/// Encodes a performance table (reference IPCs + per-workload rows).
pub fn encode_perf_table(table: &PerfTable) -> Vec<u8> {
    let mut e = Enc::new();
    e.f64s(table.ref_ipcs());
    e.len(table.len());
    for row in table.rows() {
        e.len(row.benchmarks.len());
        for &b in &row.benchmarks {
            e.u8(b as u8);
        }
        for &ipc in &row.ipcs {
            e.f64(ipc);
        }
    }
    e.into_bytes()
}

/// Decodes [`encode_perf_table`] output.
pub fn decode_perf_table(bytes: &[u8]) -> Result<PerfTable> {
    let mut d = Dec::new(bytes, "perf-table");
    let refs = d.f64s()?;
    let nrefs = refs.len();
    let rows = d.len(2)?;
    let mut table = PerfTable::new(refs);
    for _ in 0..rows {
        let cores = d.len(1)?;
        if cores == 0 || cores > 64 {
            return Err(Error::Corrupt {
                path: "perf-table".to_owned(),
                detail: format!("implausible core count {cores}"),
            });
        }
        let mut benches = Vec::with_capacity(cores);
        for _ in 0..cores {
            let b = d.u8()? as usize;
            if b >= nrefs {
                return Err(Error::Corrupt {
                    path: "perf-table".to_owned(),
                    detail: format!("benchmark {b} has no reference IPC (have {nrefs})"),
                });
            }
            benches.push(b);
        }
        let mut ipcs = Vec::with_capacity(cores);
        for _ in 0..cores {
            ipcs.push(d.f64()?);
        }
        table.push(WorkloadPerf::new(benches, ipcs));
    }
    d.finish()?;
    Ok(table)
}

/// Encodes a trained BADCO model set (one model per suite benchmark).
pub fn encode_models(models: &[Arc<BadcoModel>]) -> Vec<u8> {
    let mut e = Enc::new();
    e.len(models.len());
    for m in models {
        e.str(&m.name);
        e.u64(m.uops_total());
        e.u32(m.requests_total());
        e.len(m.nodes().len());
        for n in m.nodes() {
            e.u32(n.uops);
            e.u64(n.weight);
            e.f64(n.stall_factor);
            e.u32s(&n.deps);
            e.len(n.requests.len());
            for r in &n.requests {
                e.u32(r.id);
                e.u64(r.addr);
                e.bool(r.write);
                e.u32s(&r.addr_deps);
            }
        }
    }
    e.into_bytes()
}

/// Decodes [`encode_models`] output.
pub fn decode_models(bytes: &[u8]) -> Result<Vec<Arc<BadcoModel>>> {
    let mut d = Dec::new(bytes, "badco-models");
    let count = d.len(16)?;
    let mut models = Vec::with_capacity(count);
    for _ in 0..count {
        let name = d.str()?;
        let uops_total = d.u64()?;
        let requests_total = d.u32()?;
        let nnodes = d.len(16)?;
        let mut nodes = Vec::with_capacity(nnodes);
        let mut node_uops: u64 = 0;
        for _ in 0..nnodes {
            let uops = d.u32()?;
            node_uops += u64::from(uops);
            let weight = d.u64()?;
            let stall_factor = d.f64()?;
            let deps = d.u32s()?;
            let nreq = d.len(13)?;
            let mut requests = Vec::with_capacity(nreq);
            for _ in 0..nreq {
                requests.push(ModelRequest {
                    id: d.u32()?,
                    addr: d.u64()?,
                    write: d.bool()?,
                    addr_deps: d.u32s()?,
                });
            }
            nodes.push(ModelNode {
                uops,
                weight,
                requests,
                deps,
                stall_factor,
            });
        }
        if nodes.is_empty() || node_uops != uops_total {
            return Err(Error::Corrupt {
                path: "badco-models".to_owned(),
                detail: format!(
                    "model {name:?}: node µops {node_uops} disagree with total {uops_total}"
                ),
            });
        }
        models.push(Arc::new(BadcoModel::from_parts(
            &name,
            nodes,
            uops_total,
            requests_total,
        )));
    }
    d.finish()?;
    Ok(models)
}

/// Replays decoded µops as a [`TraceSource`] so [`TraceBuffer::capture`]
/// can rebuild the packed SoA columns without the store needing access to
/// the buffer's internals.
struct VecSource {
    uops: Vec<Uop>,
    pos: usize,
}

impl TraceSource for VecSource {
    fn next_uop(&mut self) -> Uop {
        let u = self.uops[self.pos % self.uops.len()];
        self.pos += 1;
        u
    }
    fn reset(&mut self) {
        self.pos = 0;
    }
}

/// Encodes a captured SoA trace buffer µop by µop.
pub fn encode_trace(buf: &TraceBuffer) -> Vec<u8> {
    let mut e = Enc::new();
    e.len(buf.len());
    for i in 0..buf.len() {
        let u = buf.uop(i);
        e.u8(kind_byte(u.kind));
        e.u8(u.srcs[0].map_or(u8::MAX, |r| r));
        e.u8(u.srcs[1].map_or(u8::MAX, |r| r));
        e.u8(u.dst.map_or(u8::MAX, |r| r));
        e.u64(u.addr);
        e.u8(u.size);
        e.u64(u.pc);
        e.bool(u.taken);
        e.u64(u.target);
    }
    e.into_bytes()
}

/// Decodes [`encode_trace`] output back into a shareable buffer.
pub fn decode_trace(bytes: &[u8]) -> Result<Arc<TraceBuffer>> {
    let mut d = Dec::new(bytes, "trace-buffer");
    let n = d.len(30)?;
    if n == 0 {
        return Err(Error::Corrupt {
            path: "trace-buffer".to_owned(),
            detail: "empty trace".to_owned(),
        });
    }
    let reg = |b: u8| if b == u8::MAX { None } else { Some(b) };
    let mut uops = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = byte_kind(d.u8()?, "trace-buffer")?;
        uops.push(Uop {
            kind,
            srcs: [reg(d.u8()?), reg(d.u8()?)],
            dst: reg(d.u8()?),
            addr: d.u64()?,
            size: d.u8()?,
            pc: d.u64()?,
            taken: d.bool()?,
            target: d.u64()?,
        });
    }
    d.finish()?;
    let mut src = VecSource { uops, pos: 0 };
    Ok(Arc::new(TraceBuffer::capture(&mut src, n as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mps_workloads::suite;

    #[test]
    fn f64s_round_trip() {
        let v = vec![1.0, -0.0, f64::NAN, 0.3333333333333333];
        let got = decode_f64s(&encode_f64s(&v)).unwrap();
        let bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
        let want: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, want);
    }

    #[test]
    fn population_round_trip() {
        let pop = Population::full(6, 3);
        let got = decode_population(&encode_population(&pop)).unwrap();
        assert_eq!(got.workloads(), pop.workloads());
        assert_eq!(got.is_full(), pop.is_full());
        assert_eq!(got.space().benchmarks(), 6);
        assert_eq!(got.space().cores(), 3);
    }

    #[test]
    fn perf_table_round_trip() {
        let mut t = PerfTable::new(vec![2.0, 1.0, 0.5]);
        t.push(WorkloadPerf::new(vec![0, 1], vec![1.25, 0.5]));
        t.push(WorkloadPerf::new(vec![2, 2], vec![0.25, 0.125]));
        let got = decode_perf_table(&encode_perf_table(&t)).unwrap();
        assert_eq!(got, t);
    }

    #[test]
    fn trace_round_trip_is_stream_identical() {
        let spec = &suite()[0];
        let mut src = spec.trace();
        let buf = TraceBuffer::capture(&mut src, 200);
        let got = decode_trace(&encode_trace(&buf)).unwrap();
        assert_eq!(got.len(), buf.len());
        for i in 0..buf.len() {
            assert_eq!(got.uop(i), buf.uop(i), "µop {i}");
        }
    }

    #[test]
    fn corrupt_payloads_error_not_panic() {
        assert!(decode_population(b"junk").is_err());
        assert!(decode_perf_table(&[1, 2, 3]).is_err());
        assert!(decode_models(&[0xFF; 7]).is_err());
        assert!(decode_trace(&[9u8; 11]).is_err());
        // Valid prefix, truncated tail.
        let pop = Population::full(5, 2);
        let bytes = encode_population(&pop);
        assert!(decode_population(&bytes[..bytes.len() - 3]).is_err());
    }
}

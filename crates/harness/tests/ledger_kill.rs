//! Crash-safety of the run ledger under a real process kill.
//!
//! The unit test in `mps-store` proves torn-tail isolation by truncating
//! bytes in-process; this test earns the same guarantee the hard way: a
//! child *process* loops appending records, the parent SIGKILLs it at an
//! arbitrary point, and the survivor ledger must still parse, still
//! accept appends, and still drive `mps-harness runs list`. A
//! deterministic truncation leg then guarantees the torn-tail path is
//! covered even when the kill happens to land between appends.

#![cfg(unix)]

use mps_store::{Ledger, RunRecord};
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

/// Not a test of its own: the writer body for the kill test, selected by
/// the parent via `--exact` and armed by the environment variable. Runs
/// (and immediately passes) as an empty test otherwise.
#[test]
fn child_writer_loop() {
    let Ok(dir) = std::env::var("MPS_LEDGER_KILL_DIR") else {
        return;
    };
    let ledger = Ledger::at_path(PathBuf::from(dir).join("ledger.jsonl"));
    // Bulky records widen the window in which SIGKILL lands mid-write.
    let filler = "x".repeat(512);
    for i in 0u64.. {
        let mut rec = RunRecord::new();
        rec.set("wall_ms", i.to_string());
        rec.set("experiments", "killtest");
        rec.set("filler", filler.clone());
        ledger.append(&rec).expect("append in child");
    }
}

#[test]
fn sigkill_mid_append_leaves_parseable_resumable_ledger() {
    let dir = std::env::temp_dir().join(format!("mps-ledger-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ledger_path = dir.join("ledger.jsonl");

    // Re-exec this test binary, filtered down to the writer loop.
    let mut child = Command::new(std::env::current_exe().unwrap())
        .args(["child_writer_loop", "--exact", "--nocapture"])
        .env("MPS_LEDGER_KILL_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn writer child");

    // Let it write a few records, then kill it without warning
    // (`Child::kill` is SIGKILL on unix: no destructors, no flush).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let big_enough = std::fs::metadata(&ledger_path).is_ok_and(|m| m.len() > 4096);
        if big_enough {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "writer child produced no ledger output in time"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL writer child");
    child.wait().expect("reap writer child");

    // 1. Whatever the kill left behind parses; at most the torn tail is
    //    dropped, never the records before it.
    let ledger = Ledger::at_path(&ledger_path);
    let survivors = ledger.read_all().expect("ledger must parse after SIGKILL");
    assert!(
        !survivors.is_empty(),
        "records appended before the kill must survive"
    );
    assert!(survivors
        .iter()
        .all(|r| r.get("experiments") == Some("killtest")));

    // 2. The reopened ledger accepts appends and reads them back.
    let mut rec = RunRecord::new();
    rec.set("experiments", "post-kill");
    ledger.append(&rec).expect("append after reopen");
    let after = ledger.read_all().unwrap();
    assert_eq!(after.len(), survivors.len() + 1);
    assert_eq!(after.last().unwrap().get("experiments"), Some("post-kill"));

    // 3. Deterministic torn tail: cut the final record in half (the kill
    //    above may or may not have torn a line; this leg always does).
    let bytes = std::fs::read(&ledger_path).unwrap();
    let body = std::str::from_utf8(&bytes).unwrap();
    let last_line_start = body.trim_end().rfind('\n').map_or(0, |i| i + 1);
    let torn_at = last_line_start + (body.trim_end().len() - last_line_start) / 2;
    std::fs::write(&ledger_path, &bytes[..torn_at]).unwrap();
    let mut rec = RunRecord::new();
    rec.set("experiments", "post-tear");
    ledger.append(&rec).expect("append after tear");
    let healed = ledger.read_all().expect("torn tail must be isolated");
    // The torn record is gone, the new one is in, everything earlier kept.
    assert_eq!(healed.len(), after.len());
    assert_eq!(healed.last().unwrap().get("experiments"), Some("post-tear"));

    // 4. The CLI consumes the survivor ledger end to end.
    let status = Command::new(env!("CARGO_BIN_EXE_mps-harness"))
        .args(["runs", "list", "--store"])
        .arg(&dir)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("run mps-harness");
    assert!(status.success(), "`runs list` must exit 0 on this ledger");

    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end durability tests against the real `mps-harness` binary:
//! a run killed mid-grid (via the `MPS_ABORT_AFTER_CELLS` test hook,
//! which calls `abort()` inside checkpoint recording) must, after
//! `--resume`, produce output byte-identical to an uninterrupted run —
//! at both `--jobs 1` and `--jobs 4` — and a warm store must serve
//! reruns from hits instead of recomputing.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A scratch directory removed on drop (best-effort).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("mps-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("creating scratch dir");
        TempDir(dir)
    }

    fn path(&self, sub: &str) -> PathBuf {
        self.0.join(sub)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn harness(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mps-harness"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    // Keep the child insulated from ambient configuration.
    cmd.env_remove("MPS_STORE").env_remove("MPS_JOBS");
    cmd.output().expect("spawning mps-harness")
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Parses the hit count out of the binary's trailing
/// `store: N hits, M misses, ...` stderr summary.
fn store_hits(output: &Output) -> u64 {
    let stderr = String::from_utf8_lossy(&output.stderr);
    let line = stderr
        .lines()
        .rev()
        .find(|l| l.starts_with("store: "))
        .unwrap_or_else(|| panic!("no store summary in stderr:\n{stderr}"));
    line.strip_prefix("store: ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable store summary: {line}"))
}

fn kill_and_resume_is_byte_identical(jobs: &str) {
    let tmp = TempDir::new(&format!("fig3-j{jobs}"));
    let store = tmp.path("store");
    let (reference, interrupted) = (tmp.path("ref"), tmp.path("int"));
    let common = ["fig3", "--scale", "test", "--jobs", jobs];

    // Uninterrupted reference, no store involved at all.
    let out = harness(
        &[&common[..], &["--out", reference.to_str().unwrap()]].concat(),
        &[],
    );
    assert!(out.status.success(), "reference run failed: {out:?}");

    // The same study, killed after a few grid cells...
    let args = [
        &common[..],
        &[
            "--store",
            store.to_str().unwrap(),
            "--out",
            interrupted.to_str().unwrap(),
        ],
    ]
    .concat();
    let out = harness(&args, &[("MPS_ABORT_AFTER_CELLS", "2")]);
    assert!(
        !out.status.success(),
        "abort hook should have killed the run: {out:?}"
    );
    let checkpoints = store.join("checkpoints");
    let logged = checkpoints.is_dir()
        && std::fs::read_dir(&checkpoints)
            .map(|mut d| d.next().is_some())
            .unwrap_or(false);
    assert!(logged, "killed run left no checkpoint log");

    // ...then resumed: replays the recorded cells, finishes the rest.
    let out = harness(&[&args[..], &["--resume"]].concat(), &[]);
    assert!(out.status.success(), "resumed run failed: {out:?}");

    for file in ["fig3.txt", "fig3.csv"] {
        assert_eq!(
            read(&reference.join(file)),
            read(&interrupted.join(file)),
            "{file} differs between uninterrupted and killed-then-resumed runs at --jobs {jobs}"
        );
    }
}

#[test]
fn killed_run_resumes_byte_identically_jobs_1() {
    kill_and_resume_is_byte_identical("1");
}

#[test]
fn killed_run_resumes_byte_identically_jobs_4() {
    kill_and_resume_is_byte_identical("4");
}

#[test]
fn warm_store_serves_tables_from_hits() {
    let tmp = TempDir::new("warm");
    let store = tmp.path("store");
    let (cold_out, warm_out) = (tmp.path("cold"), tmp.path("warm"));
    let args = |out: &Path| {
        vec![
            "table1".to_owned(),
            "table2".to_owned(),
            "table4".to_owned(),
            "--scale".to_owned(),
            "test".to_owned(),
            "--jobs".to_owned(),
            "2".to_owned(),
            "--store".to_owned(),
            store.to_str().unwrap().to_owned(),
            "--out".to_owned(),
            out.to_str().unwrap().to_owned(),
        ]
    };

    let cold_args = args(&cold_out);
    let cold = harness(
        &cold_args.iter().map(String::as_str).collect::<Vec<_>>(),
        &[],
    );
    assert!(cold.status.success(), "cold run failed: {cold:?}");
    assert_eq!(store_hits(&cold), 0, "a fresh store cannot have hits");

    let warm_args = args(&warm_out);
    let warm = harness(
        &warm_args.iter().map(String::as_str).collect::<Vec<_>>(),
        &[],
    );
    assert!(warm.status.success(), "warm run failed: {warm:?}");
    assert!(
        store_hits(&warm) >= 1,
        "warm rerun should hit the store: {}",
        String::from_utf8_lossy(&warm.stderr)
    );

    // Serving from the store must not change the rendered outputs.
    for file in ["table1.txt", "table2.txt", "table4.txt", "table4.csv"] {
        assert_eq!(
            read(&cold_out.join(file)),
            read(&warm_out.join(file)),
            "{file} differs between cold and warm store runs"
        );
    }
}

#[test]
fn no_store_flag_disables_persistence() {
    let tmp = TempDir::new("nostore");
    let out_dir = tmp.path("out");
    // MPS_STORE is stripped by `harness()`, so pass the store via flag and
    // then override it with --no-store: nothing may be written.
    let store = tmp.path("store");
    let out = harness(
        &[
            "table1",
            "--scale",
            "test",
            "--store",
            store.to_str().unwrap(),
            "--no-store",
            "--out",
            out_dir.to_str().unwrap(),
        ],
        &[],
    );
    assert!(out.status.success(), "--no-store run failed: {out:?}");
    assert!(
        !store.exists(),
        "--no-store must win over --store, but the store dir was created"
    );
    assert!(out_dir.join("table1.txt").exists());
}

//! Differential property test: on random small workload combinations the
//! BADCO model must agree with the detailed simulator within the
//! documented per-thread bound (`docs/validation.md`), through exactly
//! the two entry points `mps-harness validate` sweeps.
//!
//! The vendored proptest stub does not shrink; instead, a failing case is
//! saved to `tests/validate_failure.seed` as a one-line `key=value`
//! record before the test panics, and [`replay_saved_failure_seed`]
//! re-runs that exact case on every subsequent invocation until the file
//! is deleted — a reproducible seed beats a shrunk one for paired
//! simulator runs, where the interesting state is the workload itself.

use mps_harness::{Scale, StudyContext};
use mps_sampling::Workload;
use mps_uncore::PolicyKind;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Documented hard bound on per-thread |relative IPC error| at
/// `Scale::test()` (see `docs/validation.md`). The observed test-scale
/// maximum is ~41 %; anything past 60 % means the model, not the grid,
/// changed.
const MAX_ABS_REL_ERR: f64 = 0.60;

fn ctx() -> &'static StudyContext {
    static CTX: OnceLock<StudyContext> = OnceLock::new();
    CTX.get_or_init(|| StudyContext::new(Scale::test()))
}

fn seed_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/validate_failure.seed")
}

/// One differential case: both simulators on one 2-core combination.
/// Returns the violation description, if any.
fn check_case(b0: u16, b1: u16, policy: PolicyKind) -> Result<(), String> {
    let c = ctx();
    let w = Workload::new(vec![b0, b1]);
    let det = c
        .validation_detailed_ipcs(2, policy, &w)
        .map_err(|e| format!("detailed sim failed: {e}"))?;
    let models = c.models(2).map_err(|e| format!("models failed: {e}"))?;
    let bad = StudyContext::badco_run_with(&models, 2, policy, &w);
    for (k, (d, b)) in det.iter().zip(&bad).enumerate() {
        let err = (b - d) / d;
        if !(err.is_finite() && err.abs() <= MAX_ABS_REL_ERR) {
            return Err(format!(
                "thread {k} of [{b0},{b1}] under {policy}: detailed IPC {d}, \
                 BADCO IPC {b}, relative error {err:+.4} exceeds the \
                 documented {MAX_ABS_REL_ERR} bound"
            ));
        }
    }
    Ok(())
}

/// Serializes a failing case for replay, then returns the message that
/// the proptest harness will panic with.
fn save_seed(b0: u16, b1: u16, policy: PolicyKind, violation: &str) -> String {
    let body = format!("b0={b0}\nb1={b1}\npolicy={policy}\n");
    match std::fs::write(seed_path(), &body) {
        Ok(()) => format!(
            "{violation}\nreproducer saved to {} — rerun \
             `cargo test -p mps-harness --test validate_prop` to replay it",
            seed_path().display()
        ),
        Err(e) => format!("{violation}\n(could not save reproducer: {e})"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn badco_tracks_detailed_within_documented_bound(
        b0 in 0u16..22,
        b1 in 0u16..22,
        policy in prop_oneof![Just(PolicyKind::Lru), Just(PolicyKind::Drrip)],
    ) {
        if let Err(violation) = check_case(b0, b1, policy) {
            let msg = save_seed(b0, b1, policy, &violation);
            prop_assert!(false, "{}", msg);
        }
    }
}

/// Replays `tests/validate_failure.seed` if a previous run left one
/// behind; a silent pass when the file does not exist.
#[test]
fn replay_saved_failure_seed() {
    let path = seed_path();
    let Ok(body) = std::fs::read_to_string(&path) else {
        return;
    };
    let field = |key: &str| -> Option<String> {
        body.lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .map(str::to_owned)
    };
    let parsed = (|| -> Option<(u16, u16, PolicyKind)> {
        let b0 = field("b0")?.parse().ok()?;
        let b1 = field("b1")?.parse().ok()?;
        let policy = match field("policy")?.as_str() {
            "LRU" => PolicyKind::Lru,
            "DRRIP" => PolicyKind::Drrip,
            _ => return None,
        };
        Some((b0, b1, policy))
    })();
    let Some((b0, b1, policy)) = parsed else {
        panic!(
            "unreadable seed file {} — delete it to reset",
            path.display()
        );
    };
    if let Err(violation) = check_case(b0, b1, policy) {
        panic!("saved seed still fails: {violation}");
    }
    // Fixed: the seed no longer reproduces, so retire it.
    let _ = std::fs::remove_file(&path);
}

//! Integration tests for the observability layer across the pipeline:
//! profile report contents, StudyContext cache accounting, counter
//! determinism across identical runs, and the JSONL trace round-trip.
//!
//! The obs counters are process-global, so every test here takes one
//! static mutex and starts with `mps_obs::reset()`; the suite stays
//! correct under the default multithreaded test runner.

use mps_harness::{Scale, StudyContext};
use mps_uncore::PolicyKind;
use std::sync::{Mutex, MutexGuard};

static GATE: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(feature = "obs")]
mod enabled {
    use super::*;
    use mps_harness::experiments as exp;

    /// Reads one global counter by name (0 when absent).
    fn counter_value(name: &str) -> u64 {
        mps_obs::counters_snapshot()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .unwrap_or(0)
    }

    #[test]
    fn profile_pipeline_reports_both_backends_and_cache_stats() {
        let _g = guard();
        mps_obs::reset();
        let ctx = StudyContext::new(Scale::test());
        let report = exp::profile(&ctx).unwrap();

        // Both simulator backends must have simulated instructions and
        // touched the memory hierarchy.
        for c in [
            "sim.badco.instructions",
            "sim.badco.cache_accesses",
            "sim.badco.cache_misses",
            "sim.detailed.instructions",
            "sim.detailed.cache_accesses",
            "sim.detailed.cache_misses",
            "workloads.synth.uops",
            "uncore.llc.accesses",
        ] {
            assert!(counter_value(c) > 0, "counter {c} must be nonzero");
        }

        // StudyContext cache accounting: the pipeline builds each artifact
        // once and reuses it afterwards.
        let cache = ctx.cache_stats();
        assert_eq!(cache.model_misses, 1, "{cache:?}");
        assert!(cache.model_hits > 0, "{cache:?}");
        assert_eq!(cache.population_misses, 1, "{cache:?}");
        assert!(cache.population_hits >= 1, "{cache:?}");
        assert_eq!(cache.table_misses, 2, "LRU + RND tables: {cache:?}");
        assert_eq!(
            cache.trace_misses, 22,
            "one SoA capture per benchmark: {cache:?}"
        );
        assert!(cache.trace_hits > 0, "{cache:?}");
        assert_eq!(report.cache, cache, "report must carry the same stats");
        assert_eq!(
            cache.hits(),
            cache.model_hits
                + cache.population_hits
                + cache.table_hits
                + cache.badco_ref_hits
                + cache.detailed_ref_hits
                + cache.trace_hits
        );

        // The cache figures are mirrored into obs counters.
        assert_eq!(counter_value("ctx.models.misses"), cache.model_misses);
        assert_eq!(counter_value("ctx.models.hits"), cache.model_hits);
        assert_eq!(counter_value("ctx.badco_table.misses"), cache.table_misses);
        assert_eq!(counter_value("ctx.traces.misses"), cache.trace_misses);

        // And the rendered report mentions every section.
        let text = report.to_string();
        for needle in [
            "phase.trace_gen",
            "phase.model_build",
            "phase.sim.badco",
            "phase.sim.detailed",
            "phase.sampling",
            "phase.estimation",
            "-- simulator speed --",
            "-- study-context caches (hits / rebuilds) --",
            "sim.badco.instructions",
        ] {
            assert!(
                text.contains(needle),
                "report must contain {needle:?}:\n{text}"
            );
        }
        assert!(
            report.mips.0 > 0.0 && report.mips.1 > 0.0,
            "{:?}",
            report.mips
        );
    }

    #[test]
    fn identical_runs_produce_identical_counters() {
        let _g = guard();
        let run = || {
            mps_obs::reset();
            let ctx = StudyContext::new(Scale::test());
            let w = ctx.population(2).unwrap().workloads()[0].clone();
            let _ = ctx.detailed_run(2, PolicyKind::Lru, &w).unwrap();
            let _ = ctx.badco_run(2, PolicyKind::Lru, &w).unwrap();
            (
                counter_value("sim.detailed.instructions"),
                counter_value("sim.detailed.cache_misses"),
                counter_value("sim.badco.instructions"),
                counter_value("sim.badco.cache_misses"),
                counter_value("uncore.llc.accesses"),
                counter_value("uncore.llc.evictions"),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must give identical event counts");
        assert!(a.0 > 0 && a.2 > 0, "both backends must have run: {a:?}");
    }

    #[test]
    fn trace_sink_round_trips_through_the_parser() {
        let _g = guard();
        mps_obs::reset();
        let path = std::env::temp_dir().join("mps_obs_profile_trace.jsonl");
        let path_str = path.to_str().expect("temp path is utf-8");
        mps_obs::set_sink_path(path_str).expect("sink opens");

        let ctx = StudyContext::new(Scale::test());
        let w = ctx.population(2).unwrap().workloads()[0].clone();
        let outer = mps_obs::span("test.outer");
        let _ = ctx.badco_run(2, PolicyKind::Lru, &w).unwrap();
        outer.finish();
        mps_obs::reset(); // flushes and closes the sink

        let body = std::fs::read_to_string(&path).expect("trace file readable");
        let records = mps_obs::jsonl::parse_all(&body).expect("every line parses");
        let _ = std::fs::remove_file(&path);

        let spans: Vec<_> = records
            .iter()
            .filter_map(|r| match r {
                mps_obs::jsonl::Record::Span {
                    id,
                    parent,
                    name,
                    counters,
                    ..
                } => Some((*id, *parent, name.clone(), counters.clone())),
                mps_obs::jsonl::Record::Event { .. } => None,
            })
            .collect();
        assert!(!spans.is_empty(), "the run must emit span records");

        // The model builds and the BADCO run nest under test.outer, and the
        // outer span's deltas include the simulated instructions.
        let outer = spans
            .iter()
            .find(|(_, _, name, _)| name == "test.outer")
            .expect("outer span recorded");
        assert_eq!(outer.1, None, "outer span has no parent");
        assert!(
            outer.3.get("sim.badco.instructions").copied().unwrap_or(0) > 0,
            "outer span must see the run's instruction delta: {:?}",
            outer.3
        );
        let child = spans
            .iter()
            .find(|(_, _, name, _)| name == "sim.badco.run")
            .expect("badco run span recorded");
        assert!(child.1.is_some(), "sim.badco.run must have a parent span");
    }
}

#[cfg(not(feature = "obs"))]
mod disabled {
    use super::*;

    #[test]
    fn instrumentation_is_compiled_out() {
        let _g = guard();
        assert!(!mps_obs::enabled());
        let ctx = StudyContext::new(Scale::test());
        let w = ctx.population(2).unwrap().workloads()[0].clone();
        let _ = ctx.badco_run(2, PolicyKind::Lru, &w).unwrap();
        assert!(mps_obs::counters_snapshot().is_empty());
        assert!(mps_obs::span_stats().is_empty());
        assert!(mps_obs::profile_report().contains("disabled"));
        // Cache accounting is plain struct state and works regardless.
        assert_eq!(ctx.cache_stats().model_misses, 1);
    }
}

//! CSV exports must stay rectangular and parseable for every report.

use mps_harness::experiments as exp;
use mps_harness::export::CsvExport;
use mps_harness::{Scale, StudyContext};

fn assert_rectangular(name: &str, csv: &str) {
    let mut lines = csv.lines();
    let header = lines.next().unwrap_or_else(|| panic!("{name}: empty CSV"));
    let cols = header.split(',').count();
    assert!(cols >= 2, "{name}: header '{header}'");
    let mut rows = 0;
    for (i, line) in lines.enumerate() {
        assert_eq!(
            line.split(',').count(),
            cols,
            "{name}: row {i} has wrong arity: '{line}'"
        );
        rows += 1;
    }
    assert!(rows > 0, "{name}: no data rows");
}

#[test]
fn fig1_csv_is_rectangular() {
    assert_rectangular("fig1", &exp::fig1().csv());
}

#[test]
fn simulation_report_csvs_are_rectangular() {
    let ctx = StudyContext::new(Scale::test());
    assert_rectangular("table3", &exp::table3(&ctx).unwrap().csv());
    assert_rectangular("table4", &exp::table4(&ctx).unwrap().csv());
    assert_rectangular("fig5", &exp::fig5(&ctx).unwrap().csv());
    assert_rectangular("guideline", &exp::guideline(&ctx).unwrap().csv());
    assert_rectangular("fig3", &exp::fig3(&ctx).unwrap().csv());
    assert_rectangular("fig6", &exp::fig6(&ctx).unwrap().csv());
    assert_rectangular("ablation", &exp::ablation(&ctx).unwrap().csv());
}

#[test]
fn csv_numeric_fields_parse() {
    let ctx = StudyContext::new(Scale::test());
    let csv = exp::fig5(&ctx).unwrap().csv();
    for line in csv.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        // pair,metric,detailed,badco,population — last column must be a
        // number (possibly NaN for genuinely equivalent pairs).
        let last = fields.last().unwrap();
        assert!(
            last.parse::<f64>().is_ok(),
            "unparseable population 1/cv: '{last}'"
        );
    }
}

//! Golden regression tests for Tables I–IV.
//!
//! Each golden file under `tests/golden/` is a checked-in artifact from a
//! known-good run (`mps-harness table1 table2 table3 table4 --scale test`).
//! Tables I, II and IV are fully deterministic at `Scale::test()`, so they
//! compare byte for byte. Table III prints wall-clock MIPS, which varies
//! run to run — its comparison masks every decimal number and checks the
//! surviving structure (headers, row labels, core counts, column layout).
//!
//! To refresh after an intentional output change:
//!
//! ```text
//! cargo run -p mps-harness -- table1 table2 table3 table4 \
//!     --scale test --out crates/harness/tests/golden
//! ```
//!
//! The validation report golden (`validate.txt` / `validate.csv`) pins
//! the default `mps-harness validate` sweep over the seeded 22-benchmark
//! population the same way; only its wall-clock `timing:` line is masked
//! (CSV and JSONL renderings carry no wall-clock at all). Refresh with:
//!
//! ```text
//! cargo run --release -p mps-harness -- validate --no-store \
//!     --out crates/harness/tests/golden
//! ```
//!
//! and re-baseline per `docs/validation.md` if the change was an
//! intentional model change.

use mps_harness::experiments as exp;
use mps_harness::export::CsvExport;
use mps_harness::{Scale, StudyContext};

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

/// Replaces every decimal-number token (`12.345`) with `#`, then collapses
/// runs of spaces: wall-clock readings vanish, alignment changes with them,
/// but every label, integer and the column *count* survive.
fn mask_decimals(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for line in s.lines() {
        let mut first = true;
        for tok in line.split_whitespace() {
            if !first {
                out.push(' ');
            }
            first = false;
            let is_decimal = tok.parse::<f64>().is_ok() && tok.contains('.');
            out.push_str(if is_decimal { "#" } else { tok });
        }
        out.push('\n');
    }
    out
}

#[test]
fn table1_matches_golden() {
    assert_eq!(exp::table1(), golden("table1.txt"));
}

#[test]
fn table2_matches_golden() {
    assert_eq!(exp::table2(), golden("table2.txt"));
}

#[test]
fn table3_structure_matches_golden() {
    let ctx = StudyContext::new(Scale::test());
    let rep = exp::table3(&ctx).unwrap();
    assert_eq!(
        mask_decimals(&rep.to_string()),
        mask_decimals(&golden("table3.txt")),
        "table3 layout changed (numbers are masked; labels/columns are not)"
    );
    // The CSV schema: same header, same row keys (column 0), numeric cells.
    let got = rep.csv();
    let want = golden("table3.csv");
    let keys = |csv: &str| -> Vec<String> {
        csv.lines()
            .map(|l| l.split(',').next().unwrap_or("").to_owned())
            .collect()
    };
    assert_eq!(
        got.lines().next(),
        want.lines().next(),
        "table3.csv header changed"
    );
    assert_eq!(keys(&got), keys(&want), "table3.csv row keys changed");
}

#[test]
fn table4_matches_golden() {
    let ctx = StudyContext::new(Scale::test());
    let rep = exp::table4(&ctx).unwrap();
    assert_eq!(rep.to_string(), golden("table4.txt"));
    assert_eq!(rep.csv(), golden("table4.csv"));
}

/// Drops the one wall-clock line of a validation text report; everything
/// else is simulation output and compares byte for byte.
fn mask_timing(s: &str) -> String {
    s.lines()
        .filter(|l| !l.trim_start().starts_with("timing:"))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn validation_report_matches_golden() {
    let ctx = StudyContext::new(Scale::test());
    let rep = mps_harness::validate::run(&ctx, &mps_harness::ValidateOptions::default()).unwrap();
    assert_eq!(
        mask_timing(&rep.to_string()),
        mask_timing(&golden("validate.txt")),
        "validation text report drifted — if the model change was \
         intentional, refresh the golden and re-baseline per docs/validation.md"
    );
    assert_eq!(
        rep.csv(),
        golden("validate.csv"),
        "validation CSV drifted — see docs/validation.md"
    );
}

#[test]
fn mask_keeps_labels_and_integers() {
    let masked = mask_decimals("Speedup   39.2  12.1\ncores  2 4 8\n");
    assert_eq!(masked, "Speedup # #\ncores 2 4 8\n");
}

//! End-to-end drift-gate demonstration: an artificially perturbed BADCO
//! model must breach the `--fail-on` thresholds against the honest
//! baseline, while the unmodified model reproduces the baseline exactly
//! (the simulators are deterministic) and passes.

use mps_harness::{Baseline, FailOn, Scale, StudyContext, ValidateOptions};
use mps_uncore::PolicyKind;

/// Trimmed scale: the gate semantics do not depend on grid size, only on
/// paired sweeps sharing one grid.
fn mini() -> Scale {
    Scale {
        trace_len: 1_000,
        pop_4core: 24,
        pop_8core: 12,
        confidence_samples: 60,
        detailed_sample: 4,
        accuracy_workloads: 2,
        sample_sizes: vec![4, 8],
        seed: 0xC0FFEE,
    }
}

fn opts(perturb: f64) -> ValidateOptions {
    ValidateOptions {
        core_counts: vec![2],
        policies: vec![PolicyKind::Lru, PolicyKind::Drrip],
        workloads_per_group: 4,
        perturb,
    }
}

#[test]
fn perturbed_model_breaches_gate_and_honest_model_passes() {
    let gate = FailOn::parse("mean-abs-err=5%,rank-inversions=3").unwrap();

    // Baseline sweep with the unmodified model.
    let ctx = StudyContext::new(mini());
    let honest = mps_harness::validate::run(&ctx, &opts(1.0)).unwrap();
    let baseline = Baseline::parse(&honest.to_jsonl()).unwrap();

    // A fresh context (cold caches) with the same scale reproduces the
    // baseline bit-exactly, so zero drift: the gate passes.
    let rerun_ctx = StudyContext::new(mini());
    let rerun = mps_harness::validate::run(&rerun_ctx, &opts(1.0)).unwrap();
    assert_eq!(
        rerun.to_jsonl(),
        honest.to_jsonl(),
        "deterministic sweeps must reproduce the baseline byte for byte"
    );
    assert!(
        gate.breaches(&rerun, &baseline).is_empty(),
        "unmodified model must pass its own baseline"
    );

    // Halving every model coefficient (weights and stall factors) is a
    // gross model change; mean absolute error must drift past the 5 %
    // relative allowance.
    let perturbed = mps_harness::validate::run(&ctx, &opts(0.5)).unwrap();
    assert!(
        perturbed.summary.ipc_err.mean_abs > honest.summary.ipc_err.mean_abs,
        "perturbation must increase model error (honest {} vs perturbed {})",
        honest.summary.ipc_err.mean_abs,
        perturbed.summary.ipc_err.mean_abs
    );
    let breaches = gate.breaches(&perturbed, &baseline);
    assert!(
        !breaches.is_empty(),
        "perturbed model must breach the drift gate (honest mean-abs-err {}, \
         perturbed {})",
        honest.summary.ipc_err.mean_abs,
        perturbed.summary.ipc_err.mean_abs
    );
    assert!(
        breaches.iter().any(|b| b.contains("drifted")),
        "breach should name the drifted statistic: {breaches:?}"
    );

    // The perturbed report shares the honest spec (that is what lets the
    // gate compare them) but declares its factor in the header.
    assert_eq!(perturbed.spec, honest.spec);
    assert!(perturbed.to_jsonl().contains("\"perturb\":\"0.5\""));
}

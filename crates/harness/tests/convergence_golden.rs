//! Golden test: the `convergence` events a seeded fig3 run emits must
//! reproduce the paper's §VII closed forms exactly.
//!
//! The events carry floats through Rust's shortest-round-trip `Display`,
//! so parsing a field back gives the bit-exact value the run computed —
//! which lets this test recompute `W = ⌈8·cv²⌉` (equation (8)) and
//! `Pr(D≥0) = ½[1+erf((1/cv)·√(W/2))]` (equation (5)) from the event's
//! own `cv` and `w` fields and demand equality, not closeness.

use mps_harness::{Scale, StudyContext};
use mps_stats::confidence::{degree_of_confidence, required_sample_size};
use mps_stats::erf::erf;

#[test]
fn fig3_convergence_events_match_the_section_vii_closed_forms() {
    if !mps_obs::enabled() {
        return; // no events without the obs feature: nothing to pin
    }
    mps_obs::reset();
    let path = std::env::temp_dir().join(format!(
        "mps-convergence-golden-{}.jsonl",
        std::process::id()
    ));
    let path_str = path.to_str().expect("temp path is utf-8");
    mps_obs::set_sink_path(path_str).expect("sink opens");

    let ctx = StudyContext::new(Scale::test());
    let rep = mps_harness::experiments::fig3(&ctx).expect("fig3 runs at test scale");
    assert!(!rep.points.is_empty());
    mps_obs::reset(); // flushes and closes the sink

    let body = std::fs::read_to_string(&path).expect("trace file readable");
    let records = mps_obs::jsonl::parse_all(&body).expect("every line parses");
    let _ = std::fs::remove_file(&path);

    let events: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            mps_obs::jsonl::Record::Event { name, fields } if name == "convergence" => Some(fields),
            _ => None,
        })
        .collect();
    // One event per evaluated fig3 grid cell: cores × sample sizes.
    let expected = rep.points.len();
    assert_eq!(
        events.len(),
        expected,
        "one convergence event per fig3 cell"
    );

    for f in events {
        assert_eq!(f["experiment"], "fig3");
        assert_eq!(f["sampler"], "random");
        let w: usize = f["w"].parse().expect("w is an integer");
        let n: u64 = f["n"].parse().expect("n is an integer");
        let cv: f64 = f["cv"].parse().expect("cv round-trips");
        let confidence: f64 = f["confidence"].parse().expect("confidence round-trips");
        let required_w: usize = f["required_w"].parse().expect("required_w is an integer");
        assert!(n > 0, "the probe saw the pair's differences");
        assert!(cv.is_finite(), "test-scale fig3 pairs have finite cv");

        // Equation (8): W = ⌈8·cv²⌉, exactly as mps-stats computes it.
        assert_eq!(required_w, required_sample_size(cv), "cv={cv}");
        assert_eq!(required_w, ((8.0 * cv * cv).ceil() as usize).max(1));

        // Equation (5) at the cell's sample size, recomputed from the
        // event's own fields via the raw closed form: bit-identical.
        let closed = 0.5 * (1.0 + erf((1.0 / cv) * (w as f64 / 2.0).sqrt()));
        assert_eq!(confidence, closed, "cv={cv} w={w}");
        assert_eq!(confidence, degree_of_confidence(cv, w));
    }
}

//! Wall-clock scaling acceptance check for the work-stealing pool.
//!
//! The test gates itself at runtime on the host's available parallelism:
//! below 4 hardware threads a 4-worker pool cannot show real scaling, so
//! the test skips (with a message) instead of failing or hiding behind
//! `#[ignore]`. CI-adjacent measurement lives in `mps-bench`'s
//! `par_speedup` bench. Run release for stable numbers:
//!
//! ```text
//! cargo test --release -p mps-harness --test par_speedup
//! ```

use mps_harness::{Scale, StudyContext};
use mps_uncore::PolicyKind;
use std::time::Instant;

/// Builds the 4-core BADCO population table (models + references + one
/// per-workload grid) from a cold context and returns the wall time.
fn build_table(jobs: usize, scale: &Scale) -> std::time::Duration {
    let ctx = StudyContext::with_jobs(scale.clone(), jobs);
    let t0 = Instant::now();
    let table = ctx.badco_table(4, PolicyKind::Lru).unwrap();
    let dt = t0.elapsed();
    assert_eq!(table.len(), scale.pop_4core);
    dt
}

#[test]
fn population_table_speedup_at_jobs4() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 4 {
        eprintln!(
            "skipping population_table_speedup_at_jobs4: \
             only {cores} hardware thread(s) available, need >= 4"
        );
        return;
    }
    // More work than Scale::test() so the pool's fixed costs vanish into
    // the per-workload simulation time.
    let mut scale = Scale::test();
    scale.pop_4core = 200;
    // Warm-up: fault in traces and code paths outside the timed region.
    let _ = build_table(1, &scale);
    let t1 = build_table(1, &scale);
    let t4 = build_table(4, &scale);
    let speedup = t1.as_secs_f64() / t4.as_secs_f64();
    eprintln!("population table: jobs=1 {t1:?}, jobs=4 {t4:?}, speedup {speedup:.2}x");
    assert!(
        speedup >= 2.0,
        "expected >=2x speedup at jobs=4, measured {speedup:.2}x ({t1:?} -> {t4:?})"
    );
}

//! Facade crate for the multicore-throughput workload-sampling workspace.
//!
//! Re-exports every subsystem under one roof so examples and downstream
//! users can write `use mps::sampling::...` instead of depending on each
//! crate individually.
//!
//! This workspace is a from-scratch Rust reproduction of
//! *"Selecting Benchmark Combinations for the Evaluation of Multicore
//! Throughput"* (Velásquez, Michaud, Seznec — ISPASS 2013). See the
//! repository `README.md`, `DESIGN.md` and `EXPERIMENTS.md` for the full
//! inventory.
//!
//! # Quickstart
//!
//! ```
//! use mps::sampling::WorkloadSpace;
//! use mps::stats::required_sample_size;
//!
//! // 22 benchmarks on 4 cores: the paper's 12650-workload population.
//! let space = WorkloadSpace::new(22, 4);
//! assert_eq!(space.population_size(), 12650);
//!
//! // LRU-vs-FIFO-sized effects (cv ≈ 1) need only 8 random workloads.
//! assert_eq!(required_sample_size(1.0), 8);
//! ```
//!
//! # Durable studies
//!
//! A [`prelude::StudyBuilder`] study with an artifact store survives
//! kills and reruns (see `docs/durability.md`):
//!
//! ```no_run
//! use mps::prelude::*;
//!
//! let ctx = StudyContext::builder()
//!     .scale(Scale::test())
//!     .store("study-store")
//!     .resume(true)
//!     .build()?;
//! let table = ctx.badco_table(2, PolicyKind::Lru)?; // loaded-or-computed
//! # let _ = table;
//! # Ok::<(), mps::Error>(())
//! ```

pub use mps_badco as badco;
pub use mps_harness as harness;
pub use mps_metrics as metrics;
pub use mps_par as par;
pub use mps_sampling as sampling;
pub use mps_sim_cpu as sim_cpu;
pub use mps_stats as stats;
pub use mps_store as store;
pub use mps_uncore as uncore;
pub use mps_workloads as workloads;

pub use mps_store::Error;

/// The common vocabulary for running studies: one `use mps::prelude::*`
/// pulls in the builder API, the scaling presets, the store types and the
/// enums experiments are parameterized over.
pub mod prelude {
    pub use mps_harness::{Scale, StudyBuilder, StudyCacheStats, StudyContext};
    pub use mps_metrics::ThroughputMetric;
    pub use mps_sampling::{PairData, Population, Workload};
    pub use mps_store::{ArtifactKey, Error, Store, StoreStats};
    pub use mps_uncore::PolicyKind;
}

//! Captured traces (the EIO analogue) must be perfect substitutes for
//! their generators across the whole stack.

use mps::sim_cpu::{CoreConfig, MulticoreSim};
use mps::uncore::{PolicyKind, Uncore, UncoreConfig};
use mps::workloads::{benchmark_by_name, write_trace, FileTrace, TraceSource};

const N: u64 = 2_000;

fn cfg() -> UncoreConfig {
    UncoreConfig::ispass2013_scaled(2, PolicyKind::Drrip, 16)
}

#[test]
fn replayed_trace_reproduces_detailed_simulation_exactly() {
    let bench = benchmark_by_name("soplex").unwrap();

    // Capture the benchmark's first N µops.
    let mut buf = Vec::new();
    write_trace(&mut bench.trace(), N, &mut buf).unwrap();
    let replay = FileTrace::read(buf.as_slice()).unwrap();

    let run = |trace: Box<dyn TraceSource>| {
        let sim = MulticoreSim::new(CoreConfig::ispass2013(), Uncore::new(cfg(), 1), vec![trace]);
        let r = sim.run(N);
        (r.finish_cycles.clone(), r.uncore_stats, r.core_stats[0])
    };

    let from_generator = run(Box::new(bench.trace()));
    let from_file = run(Box::new(replay));
    assert_eq!(
        from_generator, from_file,
        "a captured trace must be simulation-equivalent to its generator"
    );
}

#[test]
fn replayed_trace_builds_identical_badco_models() {
    use mps::badco::{BadcoModel, BadcoTiming};
    let bench = benchmark_by_name("gcc").unwrap();
    let mut buf = Vec::new();
    write_trace(&mut bench.trace(), N, &mut buf).unwrap();
    let replay = FileTrace::read(buf.as_slice()).unwrap();

    let timing = BadcoTiming::from_uncore(&cfg());
    let from_generator =
        BadcoModel::build("gcc", &CoreConfig::ispass2013(), &bench.trace(), N, timing);
    let from_file = BadcoModel::build("gcc", &CoreConfig::ispass2013(), &replay, N, timing);
    assert_eq!(from_generator, from_file);
}

#[test]
fn capture_of_a_capture_is_stable() {
    let bench = benchmark_by_name("mcf").unwrap();
    let mut first = Vec::new();
    write_trace(&mut bench.trace(), 500, &mut first).unwrap();
    let mut replay = FileTrace::read(first.as_slice()).unwrap();
    let mut second = Vec::new();
    write_trace(&mut replay, 500, &mut second).unwrap();
    assert_eq!(first, second, "re-capturing must be byte-identical");
}

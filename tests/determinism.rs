//! Cross-crate determinism: the whole stack must be bit-reproducible from
//! seeds — the reproduction's analogue of the paper's "we assume that
//! simulations are reproducible".

use mps::badco::{BadcoModel, BadcoMulticoreSim, BadcoTiming};
use mps::sim_cpu::{CoreConfig, MulticoreSim};
use mps::uncore::{PolicyKind, Uncore, UncoreConfig};
use mps::workloads::{benchmark_by_name, TraceSource};
use std::sync::Arc;

fn scaled(policy: PolicyKind) -> UncoreConfig {
    UncoreConfig::ispass2013_scaled(2, policy, 16)
}

#[test]
fn detailed_simulation_replays_identically() {
    let run = || {
        let uncore = Uncore::new(scaled(PolicyKind::Drrip), 2);
        let traces: Vec<Box<dyn TraceSource>> = ["gcc", "soplex"]
            .iter()
            .map(|n| Box::new(benchmark_by_name(n).unwrap().trace()) as Box<dyn TraceSource>)
            .collect();
        let r = MulticoreSim::new(CoreConfig::ispass2013(), uncore, traces).run(2_500);
        (r.finish_cycles.clone(), r.uncore_stats)
    };
    assert_eq!(run(), run());
}

#[test]
fn badco_pipeline_replays_identically() {
    let build_and_run = || {
        let timing = BadcoTiming::from_uncore(&scaled(PolicyKind::Lru));
        let models: Vec<Arc<BadcoModel>> = ["mcf", "povray"]
            .iter()
            .map(|n| {
                let b = benchmark_by_name(n).unwrap();
                Arc::new(BadcoModel::build(
                    n,
                    &CoreConfig::ispass2013(),
                    &b.trace(),
                    2_500,
                    timing,
                ))
            })
            .collect();
        let uncore = Uncore::new(scaled(PolicyKind::Dip), 2);
        let r = BadcoMulticoreSim::new(uncore, models).run();
        r.finish_cycles
    };
    assert_eq!(build_and_run(), build_and_run());
}

#[test]
fn harness_context_is_deterministic() {
    use mps::harness::{Scale, StudyContext};
    let table = || {
        let ctx = StudyContext::new(Scale::test());
        let t = ctx.badco_table(2, PolicyKind::Lru).unwrap();
        t.throughputs(mps::metrics::ThroughputMetric::IpcThroughput)
    };
    assert_eq!(table(), table());
}

#[test]
fn different_policies_actually_differ_at_test_scale() {
    // Guard against the degenerate "all policies identical" regime that
    // an unscaled LLC produces with short traces.
    use mps::harness::{Scale, StudyContext};
    let ctx = StudyContext::new(Scale::test());
    let lru = ctx
        .badco_table(2, PolicyKind::Lru)
        .unwrap()
        .throughputs(mps::metrics::ThroughputMetric::IpcThroughput);
    let rnd = ctx
        .badco_table(2, PolicyKind::Random)
        .unwrap()
        .throughputs(mps::metrics::ThroughputMetric::IpcThroughput);
    let differing = lru
        .iter()
        .zip(&rnd)
        .filter(|(a, b)| (**a - **b).abs() > 1e-12)
        .count();
    assert!(
        differing > lru.len() / 4,
        "policies must differentiate: only {differing}/{} workloads differ",
        lru.len()
    );
}

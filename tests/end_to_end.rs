//! End-to-end integration: the full methodology on a miniature study.
//!
//! Builds BADCO models from detailed training runs, simulates a full
//! 2-core population under two LLC policies, derives the statistics, and
//! exercises every sampling method against the resulting data.

use mps::badco::{BadcoModel, BadcoMulticoreSim, BadcoTiming};
use mps::metrics::{per_workload_throughput, ThroughputMetric};
use mps::sampling::{
    analytic_confidence, empirical_confidence, recommend, BalancedRandomSampling,
    BenchmarkStratification, PairData, Population, RandomSampling, Recommendation,
    WorkloadStratification,
};
use mps::sim_cpu::CoreConfig;
use mps::stats::rng::Rng;
use mps::uncore::{PolicyKind, Uncore, UncoreConfig};
use mps::workloads::suite;
use std::sync::Arc;

const TRACE_LEN: u64 = 6_000;
const CORES: usize = 2;
const LLC_DIVISOR: u64 = 16;

fn models() -> Vec<Arc<BadcoModel>> {
    let timing = BadcoTiming::from_uncore(&UncoreConfig::ispass2013_scaled(
        CORES,
        PolicyKind::Lru,
        LLC_DIVISOR,
    ));
    suite()
        .iter()
        .map(|b| {
            Arc::new(BadcoModel::build(
                b.name(),
                &CoreConfig::ispass2013(),
                &b.trace(),
                TRACE_LEN,
                timing,
            ))
        })
        .collect()
}

fn population_throughputs(
    models: &[Arc<BadcoModel>],
    pop: &Population,
    policy: PolicyKind,
) -> Vec<f64> {
    pop.workloads()
        .iter()
        .map(|w| {
            let uncore = Uncore::new(
                UncoreConfig::ispass2013_scaled(CORES, policy, LLC_DIVISOR),
                CORES,
            );
            let bound = w
                .benchmarks()
                .iter()
                .map(|&b| Arc::clone(&models[b as usize]))
                .collect();
            let ipcs = BadcoMulticoreSim::new(uncore, bound).run().ipc;
            per_workload_throughput(ThroughputMetric::IpcThroughput, &ipcs, &[1.0; CORES])
        })
        .collect()
}

#[test]
fn full_methodology_runs_and_is_internally_consistent() {
    let models = models();
    assert_eq!(models.len(), 22);
    let pop = Population::full(22, CORES);
    assert_eq!(pop.len(), 253);

    let t_lru = population_throughputs(&models, &pop, PolicyKind::Lru);
    let t_fifo = population_throughputs(&models, &pop, PolicyKind::Fifo);
    let t_rnd = population_throughputs(&models, &pop, PolicyKind::Random);
    assert!(t_lru.iter().all(|&t| t > 0.0 && t.is_finite()));

    // LRU must beat both FIFO and RANDOM on average (the paper's clear
    // pairs); pick whichever shows the stronger effect for the
    // convergence checks, so the test is robust to calibration drift.
    let candidates = [
        (
            "FIFO",
            PairData::new(ThroughputMetric::IpcThroughput, t_fifo, t_lru.clone()),
        ),
        (
            "RND",
            PairData::new(ThroughputMetric::IpcThroughput, t_rnd, t_lru.clone()),
        ),
    ];
    // LRU must clearly beat FIFO (the paper's strongest safe claim); the
    // LRU-vs-RND direction is kept informational because it is a genuine
    // near-tie in this miniature population.
    assert!(
        candidates[0].1.comparison().y_wins_on_average(),
        "LRU must beat FIFO on average: mean d = {}",
        candidates[0].1.comparison().mean_difference
    );
    let (_, data) = candidates
        .into_iter()
        .filter(|(_, d)| d.comparison().y_wins_on_average())
        .max_by(|a, b| {
            a.1.comparison()
                .inv_cv
                .abs()
                .partial_cmp(&b.1.comparison().inv_cv.abs())
                .unwrap()
        })
        .expect("at least the FIFO pair qualifies");
    let cmp = data.comparison();

    // The guideline must be consistent with the estimated cv.
    let required = cmp.required_sample_size();
    match recommend(cmp.cv.abs()) {
        Recommendation::Equivalent { cv } => assert!(cv.abs() > 10.0 || cv.is_nan()),
        Recommendation::BalancedRandom { sample_size, .. } => {
            assert_eq!(sample_size, required);
        }
        Recommendation::WorkloadStratification {
            random_equivalent, ..
        } => assert_eq!(random_equivalent, required),
    }

    // Analytic and empirical confidence agree for random sampling.
    let mut rng = Rng::new(7);
    for w in [10, 40] {
        let a = analytic_confidence(&data, w);
        let e = empirical_confidence(&RandomSampling, &pop, &data, w, 1_500, &mut rng);
        assert!((a - e).abs() < 0.08, "W={w}: analytic {a} vs empirical {e}");
    }

    // Every sampling method converges toward the population verdict at
    // the model-required sample size (capped by the population).
    let w_big = required.clamp(20, 200);
    let expected = analytic_confidence(&data, w_big) - 0.12;
    let classes: Vec<usize> = suite().iter().map(|b| b.nominal_class.index()).collect();
    let bench_strata = BenchmarkStratification::new(classes);
    let workload_strata = WorkloadStratification::with_defaults(&data.differences());
    for (name, c) in [
        (
            "random",
            empirical_confidence(&RandomSampling, &pop, &data, w_big, 600, &mut rng),
        ),
        (
            "bal-random",
            empirical_confidence(&BalancedRandomSampling, &pop, &data, w_big, 600, &mut rng),
        ),
        (
            "bench-strata",
            empirical_confidence(&bench_strata, &pop, &data, w_big, 600, &mut rng),
        ),
        (
            "workload-strata",
            empirical_confidence(&workload_strata, &pop, &data, w_big, 600, &mut rng),
        ),
    ] {
        assert!(
            c > expected,
            "{name} at W={w_big}: confidence {c} (analytic target {expected})"
        );
    }

    // Workload stratification needs no more workloads than random
    // sampling for the same confidence (the paper's headline claim).
    let w_small = workload_strata.num_strata().max(10);
    let c_strat = empirical_confidence(&workload_strata, &pop, &data, w_small, 1_000, &mut rng);
    let c_rand = empirical_confidence(&RandomSampling, &pop, &data, w_small, 1_000, &mut rng);
    assert!(
        c_strat >= c_rand - 0.02,
        "stratification must not be worse: {c_strat} vs {c_rand}"
    );
}

#[test]
fn badco_and_detailed_agree_on_clear_policy_rankings() {
    // Run a handful of workloads under LRU and FIFO with BOTH simulators:
    // on the aggregate, the two simulators must agree who wins (the
    // property that makes approximate-simulation-based workload selection
    // sound — paper Section IV-B).
    let models = models();
    let mut rng = Rng::new(99);
    let space = mps::sampling::WorkloadSpace::new(22, CORES);
    let sample: Vec<_> = (0..8).map(|_| space.random_workload(&mut rng)).collect();

    let mut badco = std::collections::HashMap::new();
    let mut detailed = std::collections::HashMap::new();
    for policy in [PolicyKind::Lru, PolicyKind::Fifo] {
        let mut b_acc = 0.0;
        let mut d_acc = 0.0;
        for w in &sample {
            let uncore = Uncore::new(
                UncoreConfig::ispass2013_scaled(CORES, policy, LLC_DIVISOR),
                CORES,
            );
            let bound = w
                .benchmarks()
                .iter()
                .map(|&b| Arc::clone(&models[b as usize]))
                .collect();
            let b_ipc = BadcoMulticoreSim::new(uncore, bound).run().ipc;
            b_acc += b_ipc.iter().sum::<f64>();

            let uncore = Uncore::new(
                UncoreConfig::ispass2013_scaled(CORES, policy, LLC_DIVISOR),
                CORES,
            );
            let traces: Vec<Box<dyn mps::workloads::TraceSource>> = w
                .benchmarks()
                .iter()
                .map(|&b| {
                    Box::new(suite()[b as usize].trace()) as Box<dyn mps::workloads::TraceSource>
                })
                .collect();
            let d = mps::sim_cpu::MulticoreSim::new(CoreConfig::ispass2013(), uncore, traces)
                .run(TRACE_LEN);
            d_acc += d.ipc.iter().sum::<f64>();
        }
        badco.insert(policy, b_acc);
        detailed.insert(policy, d_acc);
    }
    // Agreement is required only when both simulators see a non-trivial
    // margin — an 8-workload sample can genuinely be a tie.
    let margin = |m: &std::collections::HashMap<PolicyKind, f64>| {
        (m[&PolicyKind::Lru] - m[&PolicyKind::Fifo]) / m[&PolicyKind::Fifo]
    };
    let bm = margin(&badco);
    let dm = margin(&detailed);
    if bm.abs() > 0.005 && dm.abs() > 0.005 {
        assert_eq!(
            bm > 0.0,
            dm > 0.0,
            "simulators disagree on LRU vs FIFO: badco {badco:?}, detailed {detailed:?}"
        );
    }
    // And in all cases the relative margins must be in the same ballpark
    // (a decisive detailed result cannot look like a blowout the other
    // way in BADCO).
    assert!(
        (bm - dm).abs() < 0.10,
        "margin divergence: badco {bm:.4} vs detailed {dm:.4}"
    );
}

//! Allocation-free steady-state checks for the simulation hot kernels.
//!
//! The hot loops — synthetic µop generation, SoA cursor replay and the
//! cache kernel — preallocate everything at construction; any per-µop or
//! per-access heap allocation is a performance regression that no
//! correctness test would catch. This binary installs the counting
//! allocator from `mps_obs::alloc` and pins the property. The checks are
//! `debug_assert`-based and require the `obs` feature; in release or
//! `--no-default-features` runs they execute the kernels but assert
//! nothing.

use mps_obs::alloc::{assert_alloc_free, CountingAllocator};
use mps_uncore::{AccessType, Cache, PolicyKind};
use mps_workloads::{benchmark_by_name, TraceBuffer, TraceSource};
use std::sync::{Arc, Mutex};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::system();

/// The allocation counter is process-global, but libtest runs the tests
/// in this binary on concurrent threads — another test's construction
/// phase allocating inside this test's counted region is a spurious
/// failure. Each test holds this lock for its whole body.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn synthetic_generation_is_alloc_free() {
    let _guard = SERIAL.lock().unwrap();
    let bench = benchmark_by_name("gcc").unwrap();
    let mut trace = bench.trace();
    // Warm up: lazily-built state (none expected) settles here.
    for _ in 0..1_000 {
        let _ = trace.next_uop();
    }
    assert_alloc_free("synthetic µop generation", || {
        let mut sum = 0u64;
        for _ in 0..10_000 {
            sum = sum.wrapping_add(trace.next_uop().addr);
        }
        sum
    });
}

#[test]
fn cursor_replay_is_alloc_free() {
    let _guard = SERIAL.lock().unwrap();
    let bench = benchmark_by_name("soplex").unwrap();
    let buf = Arc::new(TraceBuffer::capture(&mut bench.trace(), 2_000));
    let mut cursor = buf.cursor();
    assert_alloc_free("SoA cursor replay", || {
        let mut sum = 0u64;
        for _ in 0..10_000 {
            sum = sum.wrapping_add(cursor.next_uop().pc);
        }
        sum
    });
}

#[test]
fn cache_kernel_is_alloc_free() {
    let _guard = SERIAL.lock().unwrap();
    for policy in PolicyKind::PAPER_POLICIES {
        let mut cache = Cache::new(64, 8, policy);
        assert_alloc_free("cache access kernel", || {
            let mut hits = 0u64;
            for i in 0..50_000u64 {
                // Mixed reuse + streaming so hits, misses, evictions and
                // writebacks all exercise the packed-metadata paths.
                let line = (i * 7) % 1_024;
                let write = i % 3 == 0;
                let kind = if write {
                    AccessType::Write
                } else {
                    AccessType::Read
                };
                if cache.access(line, kind).is_hit() {
                    hits += 1;
                }
            }
            hits
        });
    }
}

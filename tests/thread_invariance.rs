//! Thread-invariance: the whole pipeline is bit-identical for every
//! `--jobs` value.
//!
//! This is the end-to-end proof behind the `mps-par` determinism contract
//! (see `crates/par`): experiment grids fan out over a work-stealing pool,
//! yet every derived artifact — report text, CSV export, even the cache
//! accounting — must not depend on the worker count or on how the steals
//! interleaved. A single run at `jobs = 1` is the reference; runs at 2 and
//! 8 workers (more workers than some grids have items) must reproduce it
//! byte for byte.

use mps::harness::experiments as exp;
use mps::harness::export::CsvExport;
use mps::harness::{Scale, StudyCacheStats, StudyContext};

/// Smaller even than `Scale::test()`: this suite runs every experiment
/// three times, so it trims every knob that does not change which parallel
/// code paths execute.
fn mini() -> Scale {
    Scale {
        trace_len: 1_000,
        pop_4core: 24,
        pop_8core: 12,
        confidence_samples: 60,
        detailed_sample: 4,
        accuracy_workloads: 2,
        sample_sizes: vec![4, 8],
        seed: 0xC0FFEE,
    }
}

/// The artifacts one `(fig3, table4)` grid produces under `--out`:
/// `(name, contents)` pairs plus the context's cache accounting.
fn run_grid(jobs: usize) -> (Vec<(&'static str, String)>, StudyCacheStats) {
    let ctx = StudyContext::with_jobs(mini(), jobs);
    assert_eq!(ctx.jobs(), jobs);
    let fig3 = exp::fig3(&ctx).unwrap();
    let table4 = exp::table4(&ctx).unwrap();
    let files = vec![
        ("fig3.txt", fig3.to_string()),
        ("fig3.csv", fig3.csv()),
        ("table4.txt", table4.to_string()),
        ("table4.csv", table4.csv()),
    ];
    (files, ctx.cache_stats())
}

#[test]
fn fig3_and_table4_artifacts_are_jobs_invariant() {
    let base = std::env::temp_dir().join(format!("mps-invariance-{}", std::process::id()));
    let (ref_files, ref_stats) = run_grid(1);
    // Write the reference artifacts the way `mps-harness --out DIR` does,
    // so the comparison below is over file bytes, not just strings.
    let ref_dir = base.join("jobs1");
    std::fs::create_dir_all(&ref_dir).unwrap();
    for (name, contents) in &ref_files {
        std::fs::write(ref_dir.join(name), contents).unwrap();
    }
    for jobs in [2usize, 8] {
        let (files, stats) = run_grid(jobs);
        assert_eq!(stats, ref_stats, "cache accounting differs at jobs={jobs}");
        let dir = base.join(format!("jobs{jobs}"));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, contents) in &files {
            std::fs::write(dir.join(name), contents).unwrap();
        }
        for (name, _) in &files {
            let got = std::fs::read(dir.join(name)).unwrap();
            let want = std::fs::read(ref_dir.join(name)).unwrap();
            assert_eq!(got, want, "{name} differs between jobs=1 and jobs={jobs}");
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn validation_report_is_jobs_invariant() {
    // The validation sweep fans detailed+BADCO cells over the worker pool
    // and merges group statistics afterwards; its canonical renderings
    // (JSONL and CSV — the artifacts CI compares across MPS_JOBS values)
    // must come out byte-identical for every worker count.
    let opts = mps::harness::ValidateOptions {
        core_counts: vec![2, 4],
        policies: vec![mps::uncore::PolicyKind::Lru],
        workloads_per_group: 3,
        perturb: 1.0,
    };
    let reference = {
        let ctx = StudyContext::with_jobs(mini(), 1);
        mps::harness::validate::run(&ctx, &opts).unwrap()
    };
    for jobs in [2usize, 8] {
        let ctx = StudyContext::with_jobs(mini(), jobs);
        let run = mps::harness::validate::run(&ctx, &opts).unwrap();
        assert_eq!(
            run.to_jsonl(),
            reference.to_jsonl(),
            "validation JSONL differs at jobs={jobs}"
        );
        assert_eq!(
            run.csv(),
            reference.csv(),
            "validation CSV differs at jobs={jobs}"
        );
    }
}

#[test]
fn resampling_confidence_is_jobs_invariant() {
    // fig7 leans hardest on the parallel resampler (empirical_confidence
    // across methods × sample sizes), so its curves are the sharpest
    // single check that per-sample RNG streams derive from the sample
    // index and not from scheduling order.
    let reference = {
        let ctx = StudyContext::with_jobs(mini(), 1);
        exp::fig7(&ctx).unwrap()
    };
    for jobs in [2usize, 8] {
        let ctx = StudyContext::with_jobs(mini(), jobs);
        let run = exp::fig7(&ctx).unwrap();
        assert_eq!(
            run.csv(),
            reference.csv(),
            "fig7 confidence curves differ at jobs={jobs}"
        );
    }
}

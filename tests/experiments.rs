//! Structural checks on every table/figure experiment at test scale.

use mps::harness::experiments as exp;
use mps::harness::{Scale, StudyContext};

#[test]
fn static_tables_render() {
    assert!(exp::table1().contains("4/6/4"));
    assert!(exp::table2().contains("UNCORE"));
    let fig1 = exp::fig1();
    assert_eq!(fig1.points.len(), 41);
}

#[test]
fn all_simulation_experiments_run_at_test_scale() {
    let ctx = StudyContext::new(Scale::test());

    // Table III: BADCO must be faster than the detailed simulator at
    // every core count, with the gap the paper's headline (its Table III
    // shows the speedup growing with core count).
    let speeds = exp::table3(&ctx).unwrap();
    assert_eq!(speeds.rows.len(), 4);
    for row in &speeds.rows {
        assert!(
            row.speedup() > 1.0,
            "{} cores: BADCO must be faster ({:.2}x)",
            row.cores,
            row.speedup()
        );
    }

    // Figure 2: bounded CPI error.
    let acc = exp::fig2(&ctx).unwrap();
    assert!(!acc.points.is_empty());
    for cores in acc.core_counts() {
        assert!(
            acc.mean_error(cores) < 0.5,
            "{cores}-core mean CPI error {:.1}%",
            acc.mean_error(cores) * 100.0
        );
    }

    // Figure 3: model vs experiment.
    let f3 = exp::fig3(&ctx).unwrap();
    assert!(
        f3.max_model_error() < 0.25,
        "model error {}",
        f3.max_model_error()
    );

    // Figures 4/5: sign agreement between BADCO sample and population.
    let f4 = exp::fig4(&ctx).unwrap();
    assert_eq!(f4.rows.len(), 30);
    let f5 = exp::fig5(&ctx).unwrap();
    assert_eq!(f5.rows.len(), 30);

    // Figure 6: four panels; workload stratification is never the worst
    // method at the largest sample size.
    let f6 = exp::fig6(&ctx).unwrap();
    assert_eq!(f6.panels.len(), 4);
    for p in &f6.panels {
        let sizes: Vec<usize> = p.series.iter().map(|&(_, w, _)| w).collect();
        let wmax = *sizes.iter().max().unwrap();
        let strata = p.confidence("workload-strata", wmax).unwrap();
        let random = p.confidence("random", wmax).unwrap();
        // Confidence is a probability of declaring "Y wins"; whichever
        // direction is true, stratification must be at least as decisive.
        let decisive = |c: f64| (c - 0.5).abs();
        assert!(
            decisive(strata) >= decisive(random) - 0.1,
            "{}>{}: strata {strata} vs random {random}",
            p.y,
            p.x
        );
    }

    // Overhead: reproduces the paper's arithmetic.
    let oh = exp::overhead(&ctx, &speeds);
    assert!((oh.paper.detailed_hours(30, 2) - 136.0).abs() < 1.0);
}

#[test]
fn fig7_detailed_confidence_runs() {
    let ctx = StudyContext::new(Scale::test());
    let f7 = exp::fig7(&ctx).unwrap();
    assert_eq!(f7.panels.len(), 1);
    assert_eq!(f7.simulator, "detailed");
    let p = &f7.panels[0];
    // All four methods run on the full 2-core population.
    for m in ["random", "bal-random", "bench-strata", "workload-strata"] {
        assert!(
            p.methods().contains(&m.to_owned()),
            "missing method {m}: {:?}",
            p.methods()
        );
    }
    for &(_, _, c) in &p.series {
        assert!((0.0..=1.0).contains(&c));
    }
}

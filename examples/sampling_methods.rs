//! Compare the paper's four sampling methods head-to-head (a miniature
//! Figure 6): how fast does each method's degree of confidence converge
//! with sample size?
//!
//! Uses BADCO to evaluate the full 2-core population, then resamples it
//! thousands of times per method and sample size.
//!
//! Run with: `cargo run --release --example sampling_methods`

use mps::badco::{BadcoModel, BadcoMulticoreSim, BadcoTiming};
use mps::metrics::ThroughputMetric;
use mps::sampling::{
    empirical_confidence, BalancedRandomSampling, BenchmarkStratification, PairData, Population,
    RandomSampling, Sampler, WorkloadStratification,
};
use mps::sim_cpu::CoreConfig;
use mps::stats::rng::Rng;
use mps::uncore::{PolicyKind, Uncore, UncoreConfig};
use mps::workloads::suite;
use std::sync::Arc;

const TRACE_LEN: u64 = 8_000;
const CORES: usize = 2;
const LLC_DIVISOR: u64 = 16;
const RESAMPLES: usize = 2_000;

fn main() {
    // Compare DRRIP (Y) against LRU (X) under IPC throughput.
    let (x, y) = (PolicyKind::Lru, PolicyKind::Drrip);
    let metric = ThroughputMetric::IpcThroughput;

    println!("Building models and simulating the full 253-workload population ...");
    let timing = BadcoTiming::from_uncore(&UncoreConfig::ispass2013_scaled(CORES, x, LLC_DIVISOR));
    let models: Vec<Arc<BadcoModel>> = suite()
        .iter()
        .map(|b| {
            Arc::new(BadcoModel::build(
                b.name(),
                &CoreConfig::ispass2013(),
                &b.trace(),
                TRACE_LEN,
                timing,
            ))
        })
        .collect();
    let pop = Population::full(suite().len(), CORES);
    let throughputs = |policy: PolicyKind| -> Vec<f64> {
        pop.workloads()
            .iter()
            .map(|w| {
                let uncore = Uncore::new(
                    UncoreConfig::ispass2013_scaled(CORES, policy, LLC_DIVISOR),
                    CORES,
                );
                let bound = w
                    .benchmarks()
                    .iter()
                    .map(|&b| Arc::clone(&models[b as usize]))
                    .collect();
                let ipcs = BadcoMulticoreSim::new(uncore, bound).run().ipc;
                mps::metrics::per_workload_throughput(metric, &ipcs, &[1.0; CORES])
            })
            .collect()
    };
    let data = PairData::new(metric, throughputs(x), throughputs(y));
    let cmp = data.comparison();
    println!(
        "population verdict: {} by 1/cv = {:+.3} (cv = {:.1})",
        if cmp.y_wins_on_average() {
            format!("{y} wins")
        } else {
            format!("{x} wins")
        },
        cmp.inv_cv,
        cmp.cv.abs()
    );

    // The four methods of the paper's Figure 6.
    let classes: Vec<usize> = suite().iter().map(|b| b.nominal_class.index()).collect();
    let bench_strata = BenchmarkStratification::new(classes);
    let workload_strata = WorkloadStratification::with_defaults(&data.differences());
    println!(
        "workload stratification built {} strata from the d(w) distribution",
        workload_strata.num_strata()
    );
    let methods: Vec<(&str, &dyn Sampler)> = vec![
        ("random", &RandomSampling),
        ("bal-random", &BalancedRandomSampling),
        ("bench-strata", &bench_strata),
        ("workload-strata", &workload_strata),
    ];

    println!("\ndegree of confidence ({RESAMPLES} samples per point):");
    print!("{:>6}", "W");
    for (name, _) in &methods {
        print!("{name:>18}");
    }
    println!();
    for w in [5, 10, 20, 40, 80, 160] {
        print!("{w:>6}");
        for (i, (_, method)) in methods.iter().enumerate() {
            let mut rng = Rng::new(42 + i as u64);
            let c = empirical_confidence(*method, &pop, &data, w, RESAMPLES, &mut rng);
            print!("{c:>18.3}");
        }
        println!();
    }
    println!(
        "\nExpected shape (paper Figure 6): workload-strata reaches high confidence\n\
         with the fewest workloads; balanced random beats plain random."
    );
}

//! The paper's case study in miniature: compare the five shared-LLC
//! replacement policies on multiprogrammed workloads with the detailed
//! simulator, and report all three throughput metrics.
//!
//! Run with: `cargo run --release --example policy_comparison`

use mps::metrics::{PerfTable, ThroughputMetric, WorkloadPerf};
use mps::sampling::WorkloadSpace;
use mps::sim_cpu::{CoreConfig, MulticoreSim};
use mps::stats::rng::Rng;
use mps::uncore::{PolicyKind, Uncore, UncoreConfig};
use mps::workloads::{suite, TraceSource};

const TRACE_LEN: u64 = 8_000;
const CORES: usize = 2;
const WORKLOADS: usize = 10;
/// Capacity-scaled Table II LLC (see DESIGN.md): short traces need a
/// proportionally smaller cache for replacement to matter.
const LLC_DIVISOR: u64 = 16;

fn main() {
    let bench = suite();
    let space = WorkloadSpace::new(bench.len(), CORES);
    let mut rng = Rng::new(2013);
    let sample: Vec<_> = (0..WORKLOADS)
        .map(|_| space.random_workload(&mut rng))
        .collect();
    println!(
        "Simulating {WORKLOADS} random {CORES}-core workloads x 5 policies x {TRACE_LEN} instructions ..."
    );

    // Single-thread reference IPCs on the baseline (LRU) machine.
    let refs: Vec<f64> = bench
        .iter()
        .map(|b| {
            let uncore = Uncore::new(
                UncoreConfig::ispass2013_scaled(CORES, PolicyKind::Lru, LLC_DIVISOR),
                1,
            );
            MulticoreSim::new(CoreConfig::ispass2013(), uncore, vec![Box::new(b.trace())])
                .run(TRACE_LEN)
                .ipc[0]
        })
        .collect();

    let mut tables = Vec::new();
    for policy in PolicyKind::PAPER_POLICIES {
        let mut table = PerfTable::new(refs.clone());
        for w in &sample {
            let uncore = Uncore::new(
                UncoreConfig::ispass2013_scaled(CORES, policy, LLC_DIVISOR),
                CORES,
            );
            let traces: Vec<Box<dyn TraceSource>> = w
                .benchmarks()
                .iter()
                .map(|&b| Box::new(bench[b as usize].trace()) as Box<dyn TraceSource>)
                .collect();
            let r = MulticoreSim::new(CoreConfig::ispass2013(), uncore, traces).run(TRACE_LEN);
            table.push(WorkloadPerf::new(
                w.benchmarks().iter().map(|&b| b as usize).collect(),
                r.ipc,
            ));
        }
        tables.push((policy, table));
    }

    println!(
        "\n{:<8} {:>10} {:>10} {:>10}",
        "policy", "IPCT", "WSU", "HSU"
    );
    for (policy, table) in &tables {
        println!(
            "{:<8} {:>10.4} {:>10.4} {:>10.4}",
            policy.to_string(),
            table.sample_throughput(ThroughputMetric::IpcThroughput),
            table.sample_throughput(ThroughputMetric::WeightedSpeedup),
            table.sample_throughput(ThroughputMetric::HarmonicSpeedup),
        );
    }
    println!(
        "\n(A {WORKLOADS}-workload sample is exactly what the paper warns about: rankings of\n\
         close policies at this sample size are unreliable — see the sampling_methods\n\
         example for how workload stratification fixes that.)"
    );
}

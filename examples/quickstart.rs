//! Quickstart: how many workloads does my study need?
//!
//! The 60-second version of the paper's method: estimate the effect size
//! of a microarchitecture comparison with the fast approximate simulator,
//! then let the statistics tell you how many workloads to simulate in
//! detail.
//!
//! Run with: `cargo run --release --example quickstart`

use mps::badco::{BadcoModel, BadcoMulticoreSim, BadcoTiming};
use mps::metrics::ThroughputMetric;
use mps::sampling::{analytic_confidence, recommend, PairData, Population};
use mps::sim_cpu::CoreConfig;
use mps::uncore::{PolicyKind, Uncore, UncoreConfig};
use mps::workloads::suite;
use std::sync::Arc;

const TRACE_LEN: u64 = 5_000;
const CORES: usize = 2;
/// Capacity-scaled Table II LLC (see DESIGN.md): short traces need a
/// proportionally smaller cache for replacement to matter.
const LLC_DIVISOR: u64 = 16;

fn main() {
    // 1. Pick the question: does DRRIP outperform LRU on a 2-core CMP?
    let (x, y) = (PolicyKind::Lru, PolicyKind::Drrip);
    println!("Question: does {y} beat {x} on a {CORES}-core CMP?");

    // 2. Build a BADCO behavioral model per benchmark (two fast detailed
    //    training runs each).
    println!("Building BADCO models for {} benchmarks ...", suite().len());
    let timing = BadcoTiming::from_uncore(&UncoreConfig::ispass2013_scaled(CORES, x, LLC_DIVISOR));
    let models: Vec<Arc<BadcoModel>> = suite()
        .iter()
        .map(|b| {
            Arc::new(BadcoModel::build(
                b.name(),
                &CoreConfig::ispass2013(),
                &b.trace(),
                TRACE_LEN,
                timing,
            ))
        })
        .collect();

    // 3. Simulate the FULL workload population with BADCO — cheap!
    let pop = Population::full(suite().len(), CORES);
    println!(
        "Simulating all {} workloads under both policies ...",
        pop.len()
    );
    let run = |policy: PolicyKind, w: &mps::sampling::Workload| -> Vec<f64> {
        let uncore = Uncore::new(
            UncoreConfig::ispass2013_scaled(CORES, policy, LLC_DIVISOR),
            CORES,
        );
        let bound = w
            .benchmarks()
            .iter()
            .map(|&b| Arc::clone(&models[b as usize]))
            .collect();
        BadcoMulticoreSim::new(uncore, bound).run().ipc
    };
    let metric = ThroughputMetric::IpcThroughput;
    let mut t_x = Vec::new();
    let mut t_y = Vec::new();
    for w in pop.workloads() {
        t_x.push(mps::metrics::per_workload_throughput(
            metric,
            &run(x, w),
            &[1.0; CORES],
        ));
        t_y.push(mps::metrics::per_workload_throughput(
            metric,
            &run(y, w),
            &[1.0; CORES],
        ));
    }

    // 4. Ask the statistics what a detailed study would need.
    let data = PairData::new(metric, t_x, t_y);
    let cmp = data.comparison();
    println!("\nEffect size over the population:");
    println!(
        "  mean d(w) = {:+.5}   (positive means {y} wins)",
        cmp.mean_difference
    );
    println!("  1/cv      = {:+.3}", cmp.inv_cv);
    println!("  cv        = {:.2}", cmp.cv.abs());
    println!(
        "\nGuideline (paper SectionVII): {:?}",
        recommend(cmp.cv.abs())
    );
    for w in [8, 30, 100] {
        println!(
            "  confidence with {w:>3} random workloads: {:.3}",
            analytic_confidence(&data, w)
        );
    }
}

//! Co-phase matrix simulation (the method behind the paper's footnote 4).
//!
//! Benchmarks with program phases interleave differently depending on
//! alignment; the co-phase matrix method simulates each *pair of phases*
//! once and then estimates any whole co-run analytically. This example
//! builds two 2-phase benchmarks, constructs the 2×2 co-phase matrix with
//! BADCO, and compares the analytic estimate against a direct simulation
//! of the full phased workload.
//!
//! Run with: `cargo run --release --example cophase`

use mps::badco::{BadcoModel, BadcoMulticoreSim, BadcoTiming, CoPhaseMatrix};
use mps::sim_cpu::CoreConfig;
use mps::uncore::{PolicyKind, Uncore, UncoreConfig};
use mps::workloads::{AccessPattern, PhasedTrace, SynthParams, SyntheticTrace};
use std::sync::Arc;

const PHASE_LEN: u64 = 2_000;

fn uncore_cfg() -> UncoreConfig {
    UncoreConfig::ispass2013_scaled(2, PolicyKind::Lru, 16)
}

fn phase(load: f64, footprint: u64, seed: u64) -> SyntheticTrace {
    SyntheticTrace::new(SynthParams {
        load_frac: load,
        store_frac: 0.08,
        branch_frac: 0.12,
        hot_fraction: 0.3,
        hot_bytes: 4 << 10,
        warm_fraction: 0.3,
        warm_bytes: 24 << 10,
        footprint,
        pattern: AccessPattern::Sequential { stride: 8 },
        seed,
        ..SynthParams::default()
    })
}

fn model(t: &SyntheticTrace, n: u64, name: &str) -> Arc<BadcoModel> {
    let timing = BadcoTiming::from_uncore(&uncore_cfg());
    Arc::new(BadcoModel::build(
        name,
        &CoreConfig::ispass2013(),
        t,
        n,
        timing,
    ))
}

fn main() {
    // Benchmark A: compute phase then memory sweep; B: the opposite.
    let a = [phase(0.08, 1 << 20, 1), phase(0.38, 16 << 20, 2)];
    let b = [phase(0.36, 16 << 20, 3), phase(0.06, 1 << 20, 4)];

    println!("Building per-phase BADCO models and the 2x2 co-phase matrix ...");
    let matrix = CoPhaseMatrix::build(
        &[model(&a[0], PHASE_LEN, "a0"), model(&a[1], PHASE_LEN, "a1")],
        &[model(&b[0], PHASE_LEN, "b0"), model(&b[1], PHASE_LEN, "b1")],
        &uncore_cfg(),
    );
    for i in 0..2 {
        for j in 0..2 {
            let (ra, rb) = matrix.rates(i, j);
            println!("  phase pair (A{i}, B{j}): IPC = ({ra:.3}, {rb:.3})");
        }
    }

    let target = 4 * PHASE_LEN;
    let (est_a, est_b) = matrix.estimate(&[PHASE_LEN, PHASE_LEN], &[PHASE_LEN, PHASE_LEN], target);
    println!("\nco-phase estimate over {target} uops/thread: A = {est_a:.3}, B = {est_b:.3}");

    println!("Direct BADCO simulation of the full phased workload ...");
    let pa = PhasedTrace::new(vec![(a[0].clone(), PHASE_LEN), (a[1].clone(), PHASE_LEN)]);
    let pb = PhasedTrace::new(vec![(b[0].clone(), PHASE_LEN), (b[1].clone(), PHASE_LEN)]);
    let timing = BadcoTiming::from_uncore(&uncore_cfg());
    let ma = Arc::new(BadcoModel::build(
        "A",
        &CoreConfig::ispass2013(),
        &pa,
        target,
        timing,
    ));
    let mb = Arc::new(BadcoModel::build(
        "B",
        &CoreConfig::ispass2013(),
        &pb,
        target,
        timing,
    ));
    let direct = BadcoMulticoreSim::new(Uncore::new(uncore_cfg(), 2), vec![ma, mb]).run();
    println!(
        "direct simulation:                        A = {:.3}, B = {:.3}",
        direct.ipc[0], direct.ipc[1]
    );
    println!(
        "estimate error: A {:+.1}%, B {:+.1}%",
        (est_a / direct.ipc[0] - 1.0) * 100.0,
        (est_b / direct.ipc[1] - 1.0) * 100.0
    );
    println!(
        "\n(The co-phase matrix needed {} phase-pair simulations instead of one\n\
         long co-run per alignment — the saving grows with schedule length.)",
        2 * 2
    );
}

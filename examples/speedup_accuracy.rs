//! The paper's open problem (§VIII): workload samples that give accurate
//! *speedups*, not just the right winner.
//!
//! With the approximate simulator the full-population throughput tables
//! are cheap, so the sampling distribution of the W-sample speedup
//! estimate can simply be measured — this example reports, for growing W,
//! the 95% interval of the estimated DRRIP-over-LRU speedup and the
//! smallest W that keeps the estimate within ±1% / ±0.5% of the
//! population speedup.
//!
//! Run with: `cargo run --release --example speedup_accuracy`

use mps::badco::{BadcoModel, BadcoMulticoreSim, BadcoTiming};
use mps::metrics::ThroughputMetric;
use mps::sampling::{
    population_speedup, sample_size_for_speedup_accuracy, speedup_interval, PairData, Population,
    RandomSampling, WorkloadStratification,
};
use mps::sim_cpu::CoreConfig;
use mps::stats::rng::Rng;
use mps::uncore::{PolicyKind, Uncore, UncoreConfig};
use mps::workloads::suite;
use std::sync::Arc;

const TRACE_LEN: u64 = 6_000;
const CORES: usize = 2;
const LLC_DIVISOR: u64 = 16;

fn main() {
    let (x, y) = (PolicyKind::Lru, PolicyKind::Drrip);
    println!("Measuring the full population with BADCO ({y} vs {x}) ...");
    let timing = BadcoTiming::from_uncore(&UncoreConfig::ispass2013_scaled(CORES, x, LLC_DIVISOR));
    let models: Vec<Arc<BadcoModel>> = suite()
        .iter()
        .map(|b| {
            Arc::new(BadcoModel::build(
                b.name(),
                &CoreConfig::ispass2013(),
                &b.trace(),
                TRACE_LEN,
                timing,
            ))
        })
        .collect();
    let pop = Population::full(suite().len(), CORES);
    let table = |policy: PolicyKind| -> Vec<f64> {
        pop.workloads()
            .iter()
            .map(|w| {
                let uncore = Uncore::new(
                    UncoreConfig::ispass2013_scaled(CORES, policy, LLC_DIVISOR),
                    CORES,
                );
                let bound = w
                    .benchmarks()
                    .iter()
                    .map(|&b| Arc::clone(&models[b as usize]))
                    .collect();
                let ipcs = BadcoMulticoreSim::new(uncore, bound).run().ipc;
                mps::metrics::per_workload_throughput(
                    ThroughputMetric::IpcThroughput,
                    &ipcs,
                    &[1.0; CORES],
                )
            })
            .collect()
    };
    let data = PairData::new(ThroughputMetric::IpcThroughput, table(x), table(y));
    let true_speedup = population_speedup(&data);
    println!("population speedup: {true_speedup:.4}\n");

    println!("95% interval of the W-sample speedup estimate (random sampling):");
    println!(
        "{:>6} {:>10} {:>10} {:>12}",
        "W", "low", "high", "worst err%"
    );
    let mut rng = Rng::new(2013);
    for w in [5, 10, 20, 40, 80, 160] {
        let iv = speedup_interval(&RandomSampling, &pop, &data, w, 0.95, 2_000, &mut rng);
        println!(
            "{w:>6} {:>10.4} {:>10.4} {:>11.2}%",
            iv.low,
            iv.high,
            iv.worst_relative_error() * 100.0
        );
    }

    let strata = WorkloadStratification::with_defaults(&data.differences());
    for (tol, label) in [(0.01, "±1%"), (0.005, "±0.5%")] {
        let rnd = sample_size_for_speedup_accuracy(
            &RandomSampling,
            &pop,
            &data,
            tol,
            0.95,
            253,
            1_000,
            &mut rng,
        );
        let strat =
            sample_size_for_speedup_accuracy(&strata, &pop, &data, tol, 0.95, 253, 1_000, &mut rng);
        println!(
            "\nsmallest W for {label} speedup accuracy at 95%: random = {}, workload-strata = {}",
            rnd.map_or("not reachable".into(), |w| w.to_string()),
            strat.map_or("not reachable".into(), |w| w.to_string()),
        );
    }
}

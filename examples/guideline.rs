//! The paper's §VII practical guideline, end to end:
//!
//! 1. simulate a large workload sample with the fast approximate
//!    simulator for both machines,
//! 2. estimate the coefficient of variation `cv` of `d(w)`,
//! 3. follow the decision procedure — declare equivalence, use balanced
//!    random sampling, or build workload strata,
//! 4. report the CPU-hours the chosen strategy costs vs. the naive one.
//!
//! Run with: `cargo run --release --example guideline`

use mps::badco::{BadcoModel, BadcoMulticoreSim, BadcoTiming};
use mps::metrics::ThroughputMetric;
use mps::sampling::{recommend, OverheadModel, PairData, Population, Recommendation};
use mps::sim_cpu::CoreConfig;
use mps::uncore::{PolicyKind, Uncore, UncoreConfig};
use mps::workloads::suite;
use std::sync::Arc;

const TRACE_LEN: u64 = 6_000;
const CORES: usize = 2;
const LLC_DIVISOR: u64 = 16;

fn run_population(policy: PolicyKind, models: &[Arc<BadcoModel>], pop: &Population) -> Vec<f64> {
    pop.workloads()
        .iter()
        .map(|w| {
            let uncore = Uncore::new(
                UncoreConfig::ispass2013_scaled(CORES, policy, LLC_DIVISOR),
                CORES,
            );
            let bound = w
                .benchmarks()
                .iter()
                .map(|&b| Arc::clone(&models[b as usize]))
                .collect();
            let ipcs = BadcoMulticoreSim::new(uncore, bound).run().ipc;
            mps::metrics::per_workload_throughput(
                ThroughputMetric::IpcThroughput,
                &ipcs,
                &[1.0; CORES],
            )
        })
        .collect()
}

fn main() {
    println!("Step 1: approximate simulation of the full population for each pair ...");
    let timing = BadcoTiming::from_uncore(&UncoreConfig::ispass2013_scaled(
        CORES,
        PolicyKind::Lru,
        LLC_DIVISOR,
    ));
    let models: Vec<Arc<BadcoModel>> = suite()
        .iter()
        .map(|b| {
            Arc::new(BadcoModel::build(
                b.name(),
                &CoreConfig::ispass2013(),
                &b.trace(),
                TRACE_LEN,
                timing,
            ))
        })
        .collect();
    let pop = Population::full(suite().len(), CORES);
    let mut cache: std::collections::HashMap<PolicyKind, Vec<f64>> = Default::default();
    let table = |p: PolicyKind, cache: &mut std::collections::HashMap<_, Vec<f64>>| {
        cache
            .entry(p)
            .or_insert_with(|| run_population(p, &models, &pop))
            .clone()
    };

    println!("Step 2+3: estimate cv and apply the decision procedure:\n");
    for (x, y) in [
        (PolicyKind::Fifo, PolicyKind::Lru),  // clear difference
        (PolicyKind::Lru, PolicyKind::Drrip), // moderate
        (PolicyKind::Dip, PolicyKind::Drrip), // close
    ] {
        let t_x = table(x, &mut cache);
        let t_y = table(y, &mut cache);
        let data = PairData::new(ThroughputMetric::IpcThroughput, t_x, t_y);
        let cv = data.comparison().cv.abs();
        let rec = recommend(cv);
        print!("{y} vs {x}: cv = {cv:6.2}  ->  ");
        match rec {
            Recommendation::Equivalent { .. } => {
                println!("declare the two policies throughput-equivalent")
            }
            Recommendation::BalancedRandom { sample_size, .. } => println!(
                "balanced random sampling with {sample_size} workloads suffices"
            ),
            Recommendation::WorkloadStratification {
                random_equivalent, ..
            } => println!(
                "use workload stratification (random sampling would need {random_equivalent} workloads)"
            ),
        }
    }

    println!("\nStep 4: what does each strategy cost (paper speeds, §VII-A)?");
    let m = OverheadModel::ispass2013_example();
    println!(
        "  random, 75% confidence   : {:6.0} cpu*hours ({} detailed workloads)",
        m.detailed_hours(30, 2),
        30
    );
    println!(
        "  random, 90% confidence   : {:6.0} cpu*hours ({} detailed workloads)",
        m.detailed_hours(120, 2),
        120
    );
    println!(
        "  stratified, 99% confidence: {:6.0} cpu*hours (models {:.0}h + approx {:.0}h + 30 detailed {:.0}h)",
        m.stratification_hours(800, 30, 2),
        m.model_building_hours(),
        m.approx_hours(800, 2),
        m.detailed_hours(30, 2),
    );
}
